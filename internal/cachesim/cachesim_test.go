package cachesim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func newManager(t *testing.T) (*Manager, *fabric.Fabric) {
	t.Helper()
	e := simtime.NewEngine(1)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	m, err := NewManager(fab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, fab
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{LLCBytes: 0, Ways: 11, DDIOWays: 2, DrainWindow: 1},
		{LLCBytes: 1, Ways: 0, DDIOWays: 2, DrainWindow: 1},
		{LLCBytes: 1, Ways: 4, DDIOWays: 5, DrainWindow: 1},
		{LLCBytes: 1, Ways: 4, DDIOWays: 2, DrainWindow: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestDDIOCapacity(t *testing.T) {
	c := DefaultConfig()
	want := int64(30<<20) * 2 / 11
	if got := c.DDIOCapacity(); got != want {
		t.Fatalf("DDIOCapacity = %d, want %d", got, want)
	}
}

func TestSingleStreamFitsNoSpill(t *testing.T) {
	m, _ := newManager(t)
	// 20 GB/s x 200us = 4 MB working set < 5.45 MB DDIO capacity.
	if err := m.AddStream("nic0-rx", "kv", 0, topology.GBps(20)); err != nil {
		t.Fatal(err)
	}
	miss, err := m.MissFraction("nic0-rx")
	if err != nil {
		t.Fatal(err)
	}
	if miss != 0 {
		t.Fatalf("fitting stream miss fraction %v, want 0", miss)
	}
	if sp := m.SpillRate(0); float64(sp) > 1 {
		t.Fatalf("spill rate %v, want ~0", sp)
	}
}

func TestTwoStreamsThrash(t *testing.T) {
	m, _ := newManager(t)
	// 2 x 20 GB/s x 200us = 8 MB > 5.45 MB capacity.
	_ = m.AddStream("nic0-rx", "kv", 0, topology.GBps(20))
	if err := m.AddStream("ssd0-wr", "ml", 0, topology.GBps(20)); err != nil {
		t.Fatal(err)
	}
	miss, _ := m.MissFraction("nic0-rx")
	wantMiss := 1 - float64(DefaultConfig().DDIOCapacity())/(40e9*200e-6)
	if math.Abs(miss-wantMiss) > 1e-9 {
		t.Fatalf("miss fraction %v, want %v", miss, wantMiss)
	}
	// Both streams see the same (shared-slice) miss fraction.
	miss2, _ := m.MissFraction("ssd0-wr")
	if miss2 != miss {
		t.Fatalf("asymmetric miss fractions %v vs %v", miss, miss2)
	}
	// Spill rate = total rate x miss.
	wantSpill := 40e9 * wantMiss
	if got := float64(m.SpillRate(0)); math.Abs(got-wantSpill) > 1 {
		t.Fatalf("spill rate %v, want %v", got, wantSpill)
	}
}

func TestSpillAppearsOnMemoryLinks(t *testing.T) {
	m, fab := newManager(t)
	_ = m.AddStream("a", "t1", 0, topology.GBps(30))
	_ = m.AddStream("b", "t2", 0, topology.GBps(30))
	// Some memctrl->dimm link on socket 0 must now carry traffic.
	var total topology.Rate
	for _, st := range fab.AllLinkStats() {
		l := fab.Topology().Link(st.Link)
		from, to := fab.Topology().Component(l.From), fab.Topology().Component(l.To)
		if from.Kind == topology.KindMemCtrl && to.Kind == topology.KindDIMM && to.Socket == 0 {
			total += st.CurrentRate
		}
	}
	if float64(total) < 1e9 {
		t.Fatalf("memory links carry %v, want substantial spill", total)
	}
}

func TestDDIOOffForcesFullMiss(t *testing.T) {
	m, fab := newManager(t)
	fab.Topology().Component("socket0.llc").SetConfig(topology.ConfigDDIO, "off")
	_ = m.AddStream("a", "t1", 0, topology.GBps(5))
	miss, _ := m.MissFraction("a")
	if miss != 1 {
		t.Fatalf("DDIO-off miss fraction %v, want 1", miss)
	}
}

func TestSocketsIndependent(t *testing.T) {
	m, _ := newManager(t)
	_ = m.AddStream("a", "t1", 0, topology.GBps(30))
	_ = m.AddStream("b", "t2", 0, topology.GBps(30))
	_ = m.AddStream("c", "t3", 1, topology.GBps(5))
	missC, _ := m.MissFraction("c")
	if missC != 0 {
		t.Fatalf("socket-1 stream thrashed by socket-0 load: miss %v", missC)
	}
	if m.SpillRate(1) > 1 {
		t.Fatalf("socket 1 spill %v", m.SpillRate(1))
	}
}

func TestRateUpdateAndRemove(t *testing.T) {
	m, fab := newManager(t)
	_ = m.AddStream("a", "t1", 0, topology.GBps(30))
	_ = m.AddStream("b", "t2", 0, topology.GBps(30))
	missBefore, _ := m.MissFraction("a")
	if missBefore <= 0 {
		t.Fatal("expected thrash before update")
	}
	if err := m.SetStreamRate("b", topology.GBps(1)); err != nil {
		t.Fatal(err)
	}
	missAfter, _ := m.MissFraction("a")
	if missAfter >= missBefore {
		t.Fatalf("reducing competitor rate did not reduce miss: %v -> %v", missBefore, missAfter)
	}
	flowsBefore := fab.Flows()
	m.RemoveStream("b")
	if fab.Flows() != flowsBefore-2 {
		t.Fatalf("remove did not drop 2 spill flows: %d -> %d", flowsBefore, fab.Flows())
	}
	if m.Streams() != 1 {
		t.Fatalf("Streams = %d", m.Streams())
	}
	m.RemoveStream("b") // idempotent
}

func TestValidationErrors(t *testing.T) {
	m, _ := newManager(t)
	if err := m.AddStream("a", "t", 0, -1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := m.AddStream("a", "t", 9, topology.GBps(1)); err == nil {
		t.Fatal("bad socket accepted")
	}
	_ = m.AddStream("a", "t", 0, topology.GBps(1))
	if err := m.AddStream("a", "t", 0, topology.GBps(1)); err == nil {
		t.Fatal("duplicate stream accepted")
	}
	if err := m.SetStreamRate("zz", topology.GBps(1)); err == nil {
		t.Fatal("unknown stream rate update accepted")
	}
	if err := m.SetStreamRate("a", -1); err == nil {
		t.Fatal("negative rate update accepted")
	}
	if _, err := m.MissFraction("zz"); err == nil {
		t.Fatal("unknown stream miss query accepted")
	}
}

// Property: miss fraction is always in [0,1], zero while the combined
// working set fits, and monotonically non-decreasing in total rate.
func TestPropertyMissFraction(t *testing.T) {
	f := func(r1, r2 uint8) bool {
		m, _ := newManager(t)
		rate1 := topology.Rate(r1) * 5e8 // up to 127 GB/s
		rate2 := topology.Rate(r2) * 5e8
		if err := m.AddStream("a", "t1", 0, rate1); err != nil {
			return false
		}
		if err := m.AddStream("b", "t2", 0, rate2); err != nil {
			return false
		}
		miss, err := m.MissFraction("a")
		if err != nil {
			return false
		}
		if miss < 0 || miss > 1 {
			return false
		}
		ws, capacity := m.Occupancy(0)
		if ws <= capacity && miss != 0 {
			return false
		}
		if ws > capacity && miss == 0 {
			return false
		}
		// Raising a rate never lowers the miss fraction.
		if err := m.SetStreamRate("b", rate2+1e9); err != nil {
			return false
		}
		miss2, _ := m.MissFraction("a")
		return miss2 >= miss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancy(t *testing.T) {
	m, _ := newManager(t)
	_ = m.AddStream("a", "t", 0, topology.GBps(20))
	ws, cap := m.Occupancy(0)
	if ws != 4_000_000 { // 20e9 B/s x 200us
		t.Fatalf("working set %d, want 4e6", ws)
	}
	if cap != DefaultConfig().DDIOCapacity() {
		t.Fatalf("capacity %d", cap)
	}
}
