// Package cachesim models Intel DDIO-style direct cache access and the
// cache-thrashing interference pathway the paper describes in §2:
// high-bandwidth I/O devices write directly into a dedicated slice of
// the last-level cache; when their combined working set overflows that
// slice, data is evicted to DRAM before applications consume it, and
// the spilled traffic consumes memory-bus bandwidth that would
// otherwise not be touched at all.
//
// The model is occupancy-based: each registered I/O stream holds a
// working set proportional to its rate and the application's drain
// window. Overflow produces a per-stream miss fraction, and the
// manager materializes the resulting writeback + refetch traffic as
// real flows on the fabric's memory links, so the interference is
// visible to the monitor, the counters and the other tenants.
package cachesim

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Config sizes the LLC model.
type Config struct {
	// LLCBytes is the total last-level cache size per socket.
	LLCBytes int64
	// Ways is the cache associativity (total ways).
	Ways int
	// DDIOWays is the number of ways reserved for direct I/O writes
	// (Intel defaults to 2 of 11).
	DDIOWays int
	// DrainWindow is how long I/O data lingers in cache before the
	// application consumes it; working set = rate x window.
	DrainWindow simtime.Duration
}

// DefaultConfig matches a Cascade-Lake-class part: 30 MiB LLC, 11
// ways, 2 DDIO ways, 200 us drain window.
func DefaultConfig() Config {
	return Config{
		LLCBytes:    30 << 20,
		Ways:        11,
		DDIOWays:    2,
		DrainWindow: 200 * simtime.Microsecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LLCBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive LLC size")
	}
	if c.Ways <= 0 || c.DDIOWays <= 0 || c.DDIOWays > c.Ways {
		return fmt.Errorf("cachesim: invalid ways %d/%d", c.DDIOWays, c.Ways)
	}
	if c.DrainWindow <= 0 {
		return fmt.Errorf("cachesim: non-positive drain window")
	}
	return nil
}

// DDIOCapacity returns the bytes available to direct I/O writes.
func (c Config) DDIOCapacity() int64 {
	return c.LLCBytes * int64(c.DDIOWays) / int64(c.Ways)
}

// StreamID names a registered I/O stream.
type StreamID string

// stream is one device's direct-to-cache write stream.
type stream struct {
	id     StreamID
	tenant fabric.TenantID
	socket int
	rate   topology.Rate
	// spill flows materialized on the fabric (writeback + refetch).
	wb, rf *fabric.Flow
	miss   float64
}

// Manager tracks DDIO streams per socket and maintains the spill flows
// their overflow induces.
type Manager struct {
	fab *fabric.Fabric
	cfg Config

	streams map[StreamID]*stream
}

// NewManager creates a DDIO manager over the fabric.
func NewManager(fab *fabric.Fabric, cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Manager{fab: fab, cfg: cfg, streams: make(map[StreamID]*stream)}, nil
}

// Config returns the manager's cache configuration.
func (m *Manager) Config() Config { return m.cfg }

// ddioEnabled consults the socket's LLC component configuration.
func (m *Manager) ddioEnabled(socket int) bool {
	llc := m.fab.Topology().Component(llcID(socket))
	if llc == nil {
		return false
	}
	v, ok := llc.ConfigValue(topology.ConfigDDIO)
	return ok && v == "on"
}

func llcID(socket int) topology.CompID {
	return topology.CompID(fmt.Sprintf("socket%d.llc", socket))
}

// AddStream registers a direct-to-cache I/O stream on a socket and
// rebalances spill traffic. rate is the stream's sustained write rate
// into the LLC.
func (m *Manager) AddStream(id StreamID, tenant fabric.TenantID, socket int, rate topology.Rate) error {
	if _, ok := m.streams[id]; ok {
		return fmt.Errorf("cachesim: duplicate stream %q", id)
	}
	if rate < 0 {
		return fmt.Errorf("cachesim: negative rate")
	}
	if m.fab.Topology().Component(llcID(socket)) == nil {
		return fmt.Errorf("cachesim: socket %d has no LLC", socket)
	}
	st := &stream{id: id, tenant: tenant, socket: socket, rate: rate}
	if err := m.materialize(st); err != nil {
		return err
	}
	m.streams[id] = st
	m.rebalance(socket)
	return nil
}

// SetStreamRate updates a stream's write rate and rebalances.
func (m *Manager) SetStreamRate(id StreamID, rate topology.Rate) error {
	st, ok := m.streams[id]
	if !ok {
		return fmt.Errorf("cachesim: unknown stream %q", id)
	}
	if rate < 0 {
		return fmt.Errorf("cachesim: negative rate")
	}
	st.rate = rate
	m.rebalance(st.socket)
	return nil
}

// RemoveStream drops a stream and its spill flows.
func (m *Manager) RemoveStream(id StreamID) {
	st, ok := m.streams[id]
	if !ok {
		return
	}
	delete(m.streams, id)
	m.fab.RemoveFlow(st.wb)
	m.fab.RemoveFlow(st.rf)
	m.rebalance(st.socket)
}

// materialize creates the stream's writeback and refetch flows with
// zero demand; rebalance sets their demands.
func (m *Manager) materialize(st *stream) error {
	topo := m.fab.Topology()
	dimms := dimmsOn(topo, st.socket)
	if len(dimms) == 0 {
		return fmt.Errorf("cachesim: socket %d has no DIMMs", st.socket)
	}
	// Spread streams across DIMMs by a stable hash of the stream ID.
	d := dimms[hashString(string(st.id))%len(dimms)]
	wbPath, err := topo.ShortestPath(llcID(st.socket), d)
	if err != nil {
		return err
	}
	rfPath, err := topo.ShortestPath(d, llcID(st.socket))
	if err != nil {
		return err
	}
	st.wb = &fabric.Flow{Tenant: st.tenant, Path: wbPath, Demand: 1}
	st.rf = &fabric.Flow{Tenant: st.tenant, Path: rfPath, Demand: 1}
	if err := m.fab.AddFlow(st.wb); err != nil {
		return err
	}
	if err := m.fab.AddFlow(st.rf); err != nil {
		m.fab.RemoveFlow(st.wb)
		return err
	}
	return nil
}

func dimmsOn(topo *topology.Topology, socket int) []topology.CompID {
	var out []topology.CompID
	for _, c := range topo.ComponentsOfKind(topology.KindDIMM) {
		if c.Socket == socket {
			out = append(out, c.ID)
		}
	}
	return out
}

func hashString(s string) int {
	h := 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ int(s[i])) * 16777619 & 0x7fffffff
	}
	return h
}

// rebalance recomputes miss fractions for a socket's streams and
// updates spill-flow demands.
func (m *Manager) rebalance(socket int) {
	var socketStreams []*stream
	var totalWS float64
	for _, st := range m.sorted() {
		if st.socket != socket {
			continue
		}
		socketStreams = append(socketStreams, st)
		totalWS += float64(st.rate) * m.cfg.DrainWindow.Seconds()
	}
	capacity := float64(m.cfg.DDIOCapacity())
	miss := 0.0
	if !m.ddioEnabled(socket) {
		miss = 1 // DDIO off: every I/O byte goes through DRAM
	} else if totalWS > capacity && totalWS > 0 {
		miss = 1 - capacity/totalWS
	}
	for _, st := range socketStreams {
		st.miss = miss
		spill := topology.Rate(float64(st.rate) * miss)
		// A missed byte is written back to DRAM and later refetched:
		// spill appears on both directions of the memory path.
		if spill <= 0 {
			spill = 1 // keep flows alive but negligible
		}
		_ = m.fab.SetDemand(st.wb, spill)
		_ = m.fab.SetDemand(st.rf, spill)
	}
}

func (m *Manager) sorted() []*stream {
	out := make([]*stream, 0, len(m.streams))
	for _, st := range m.streams {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// MissFraction returns a stream's current miss fraction in [0,1].
func (m *Manager) MissFraction(id StreamID) (float64, error) {
	st, ok := m.streams[id]
	if !ok {
		return 0, fmt.Errorf("cachesim: unknown stream %q", id)
	}
	return st.miss, nil
}

// SpillRate returns the total DRAM writeback rate induced by a
// socket's DDIO overflow (the refetch direction adds the same again).
func (m *Manager) SpillRate(socket int) topology.Rate {
	var sum topology.Rate
	for _, st := range m.streams {
		if st.socket == socket {
			sum += topology.Rate(float64(st.rate) * st.miss)
		}
	}
	return sum
}

// Occupancy returns the socket's DDIO working set in bytes and the
// slice capacity.
func (m *Manager) Occupancy(socket int) (workingSet, capacity int64) {
	var ws float64
	for _, st := range m.streams {
		if st.socket == socket {
			ws += float64(st.rate) * m.cfg.DrainWindow.Seconds()
		}
	}
	return int64(ws), m.cfg.DDIOCapacity()
}

// Streams returns the number of registered streams.
func (m *Manager) Streams() int { return len(m.streams) }

// MaxMiss returns the highest miss fraction across all streams (zero
// with no streams) — the diagml classifier's cache-thrash feature.
func (m *Manager) MaxMiss() float64 {
	max := 0.0
	for _, st := range m.streams {
		if st.miss > max {
			max = st.miss
		}
	}
	return max
}
