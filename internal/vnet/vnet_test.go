package vnet

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/resmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func TestBuildView(t *testing.T) {
	topo := topology.TwoSocketServer()
	p, err := topo.ShortestPath("gpu0", "nic0")
	if err != nil {
		t.Fatal(err)
	}
	res := resmodel.NewReservation()
	res.AddPipe(p, topology.GBps(16))
	v, err := Build(topo, "kv", res)
	if err != nil {
		t.Fatal(err)
	}
	if v.HostName != "two-socket" || v.Topo.Name != "kv@two-socket" {
		t.Fatalf("names: %q, %q", v.HostName, v.Topo.Name)
	}
	// Guaranteed links show the allocation as capacity.
	for _, l := range p.Links {
		if !v.Guaranteed(l.ID) {
			t.Fatalf("link %s not marked guaranteed", l.ID)
		}
		c, err := v.Capacity(l.ID)
		if err != nil {
			t.Fatal(err)
		}
		if c != topology.GBps(16) {
			t.Fatalf("virtual capacity %v, want 16GB/s", c)
		}
	}
	// The tenant's illusion: the path bottleneck is its allocation.
	vp, err := v.Topo.ShortestPath("gpu0", "nic0")
	if err != nil {
		t.Fatal(err)
	}
	if v.PathCapacity(vp) != topology.GBps(16) {
		t.Fatalf("virtual path capacity %v", v.PathCapacity(vp))
	}
	// Unreserved links keep physical capacity and are best-effort.
	other, _ := topo.ShortestPath("gpu1", "nic1")
	if v.Guaranteed(other.Links[0].ID) {
		t.Fatal("unreserved link marked guaranteed")
	}
	c, _ := v.Capacity(other.Links[0].ID)
	if c != other.Links[0].Capacity {
		t.Fatalf("unreserved virtual capacity %v != physical %v", c, other.Links[0].Capacity)
	}
}

func TestBuildDoesNotAliasPhysical(t *testing.T) {
	topo := topology.TwoSocketServer()
	p, _ := topo.ShortestPath("gpu0", "nic0")
	orig := p.Links[0].Capacity
	res := resmodel.NewReservation()
	res.AddPipe(p, 1)
	v, err := Build(topo, "kv", res)
	if err != nil {
		t.Fatal(err)
	}
	_ = v
	if topo.Link(p.Links[0].ID).Capacity != orig {
		t.Fatal("Build mutated physical topology")
	}
}

func TestUsageReportTenantScoped(t *testing.T) {
	topo := topology.TwoSocketServer()
	e := simtime.NewEngine(1)
	fab := fabric.New(topo, e, fabric.Config{PCIeEfficiency: 1})
	p, _ := topo.ShortestPath("gpu0", "nic0")
	res := resmodel.NewReservation()
	res.AddPipe(p, topology.GBps(10))
	v, err := Build(topo, "kv", res)
	if err != nil {
		t.Fatal(err)
	}
	// kv uses 5 GB/s of its 10; a neighbor floods the same links.
	_ = fab.AddFlow(&fabric.Flow{Tenant: "kv", Path: p, Demand: topology.GBps(5)})
	_ = fab.AddFlow(&fabric.Flow{Tenant: "noisy", Path: p})
	e.RunFor(1000)
	rep := v.UsageReport(fab)
	if len(rep) != p.Hops() {
		t.Fatalf("report covers %d links, want %d", len(rep), p.Hops())
	}
	for _, lu := range rep {
		if lu.Allocated != topology.GBps(10) {
			t.Fatalf("allocation %v", lu.Allocated)
		}
		if lu.Used != topology.GBps(5) {
			t.Fatalf("used %v, want kv's own 5GB/s only", lu.Used)
		}
		if lu.Utilization != 0.5 {
			t.Fatalf("virtual utilization %v, want 0.5", lu.Utilization)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	topo := topology.MinimalHost()
	if _, err := Build(topo, "", resmodel.NewReservation()); err == nil {
		t.Fatal("empty tenant accepted")
	}
	bad := resmodel.NewReservation()
	bad.Add("zz->qq", 1)
	if _, err := Build(topo, "kv", bad); err == nil {
		t.Fatal("unknown link accepted")
	}
	if _, err := (&View{Topo: topo}).Capacity("zz->qq"); err == nil {
		t.Fatal("unknown link capacity query accepted")
	}
}
