// Package vnet provides the virtualized intra-host network abstraction
// of §3.2: each tenant sees an independent virtual view of the host in
// which the capacity of every link it holds a guarantee on *is* its
// allocation — "if a tenant is only allocated half of the PCIe
// bandwidth ... it should see an illusion that the allocated bandwidth
// is the corresponding PCIe capacity." Links without a guarantee
// appear at physical capacity but are marked best-effort.
package vnet

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/resmodel"
	"repro/internal/topology"
)

// View is one tenant's virtual intra-host network.
type View struct {
	Tenant fabric.TenantID
	// Topo is the virtual topology: same shape as the physical host,
	// with guaranteed links' capacities replaced by the allocation.
	Topo *topology.Topology
	// Reservation is the tenant's per-link allocation.
	Reservation resmodel.Reservation
	// HostName records which physical host preset the view derives
	// from (changes transparently on migration).
	HostName string
}

// Build derives a tenant's view from the physical topology and its
// reservation.
func Build(physical *topology.Topology, tenant fabric.TenantID, res resmodel.Reservation) (*View, error) {
	if tenant == "" {
		return nil, fmt.Errorf("vnet: empty tenant")
	}
	vt := physical.Clone()
	vt.Name = string(tenant) + "@" + physical.Name
	for l, r := range res.Links {
		vl := vt.Link(l)
		if vl == nil {
			return nil, fmt.Errorf("vnet: reservation references unknown link %q", l)
		}
		vl.Capacity = r
	}
	return &View{
		Tenant:      tenant,
		Topo:        vt,
		Reservation: res.Clone(),
		HostName:    physical.Name,
	}, nil
}

// Guaranteed reports whether the tenant holds a guarantee on the given
// directed link (false means best-effort sharing).
func (v *View) Guaranteed(link topology.LinkID) bool {
	_, ok := v.Reservation.Links[link]
	return ok
}

// Capacity returns the capacity the tenant perceives on a link: its
// allocation where guaranteed, physical capacity otherwise.
func (v *View) Capacity(link topology.LinkID) (topology.Rate, error) {
	l := v.Topo.Link(link)
	if l == nil {
		return 0, fmt.Errorf("vnet: unknown link %q", link)
	}
	return l.Capacity, nil
}

// PathCapacity returns the perceived bottleneck capacity along a path
// in the virtual view — what the tenant should expect an ihperf run to
// report when its guarantees are enforced.
func (v *View) PathCapacity(p topology.Path) topology.Rate {
	var min topology.Rate
	for i, l := range p.Links {
		c, err := v.Capacity(l.ID)
		if err != nil {
			return 0
		}
		if i == 0 || c < min {
			min = c
		}
	}
	return min
}

// LinkUsage is one guaranteed link's tenant-scoped utilization.
type LinkUsage struct {
	Link topology.LinkID
	// Allocated is the tenant's guarantee on the link.
	Allocated topology.Rate
	// Used is the tenant's own current rate there.
	Used topology.Rate
	// Utilization is Used/Allocated — utilization *of the virtual
	// link*, which is all the tenant is entitled to see.
	Utilization float64
}

// UsageReport returns the tenant-scoped view of its guaranteed links:
// its own consumption against its own allocation, and nothing about
// other tenants — the monitoring counterpart of the isolation
// abstraction (a tenant must not observe its neighbors through shared
// counters). Links are in sorted order.
func (v *View) UsageReport(fab *fabric.Fabric) []LinkUsage {
	out := make([]LinkUsage, 0, len(v.Reservation.Links))
	for _, id := range v.Reservation.LinkIDs() {
		alloc := v.Reservation.Links[id]
		used := fab.TenantRateOn(id, v.Tenant)
		u := LinkUsage{Link: id, Allocated: alloc, Used: used}
		if alloc > 0 {
			u.Utilization = float64(used) / float64(alloc)
		}
		out = append(out, u)
	}
	return out
}
