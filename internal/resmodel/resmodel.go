// Package resmodel provides the resource models the paper's
// performance-target interpreter chooses between (§3.2 Q1): the pipe
// model (a point-to-point bandwidth guarantee along a specific
// pathway) and the hose model (a per-endpoint aggregate guarantee,
// provisioned for the worst-case traffic matrix under fixed shortest-
// path routing). Both compile to Reservations — per-link bandwidth
// requirements — which the scheduler places and the arbiter enforces.
package resmodel

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Model names a resource model.
type Model string

// The two models the paper discusses.
const (
	ModelPipe Model = "pipe"
	ModelHose Model = "hose"
)

// Reservation is a set of per-directed-link bandwidth requirements.
type Reservation struct {
	Links map[topology.LinkID]topology.Rate
}

// NewReservation returns an empty reservation.
func NewReservation() Reservation {
	return Reservation{Links: make(map[topology.LinkID]topology.Rate)}
}

// Add accumulates a requirement on one link.
func (r Reservation) Add(link topology.LinkID, rate topology.Rate) {
	r.Links[link] += rate
}

// Rate returns the reserved rate on a link (zero if none).
func (r Reservation) Rate(link topology.LinkID) topology.Rate { return r.Links[link] }

// Merge accumulates another reservation into this one.
func (r Reservation) Merge(other Reservation) {
	for l, v := range other.Links {
		r.Links[l] += v
	}
}

// Clone returns an independent copy.
func (r Reservation) Clone() Reservation {
	out := NewReservation()
	for l, v := range r.Links {
		out.Links[l] = v
	}
	return out
}

// Total returns the sum of all per-link requirements (a rough size
// metric; links are counted individually).
func (r Reservation) Total() topology.Rate {
	var sum topology.Rate
	for _, v := range r.Links {
		sum += v
	}
	return sum
}

// LinkIDs returns the reserved links in sorted order.
func (r Reservation) LinkIDs() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(r.Links))
	for l := range r.Links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddPipe reserves rate on every link of a path — the pipe model's
// compilation.
func (r Reservation) AddPipe(path topology.Path, rate topology.Rate) {
	for _, l := range path.Links {
		r.Add(l.ID, rate)
	}
}

// Violation reports one link whose requirement exceeds available
// capacity.
type Violation struct {
	Link topology.LinkID
	Need topology.Rate
	Have topology.Rate
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: need %v, have %v", v.Link, v.Need, v.Have)
}

// CheckFit verifies the reservation fits within the free capacity map
// (effective capacity minus already-reserved). It returns all
// violations, sorted by link; an empty slice means admissible.
func CheckFit(r Reservation, free map[topology.LinkID]topology.Rate) []Violation {
	var out []Violation
	for _, l := range r.LinkIDs() {
		need := r.Links[l]
		have, ok := free[l]
		if !ok || need > have {
			out = append(out, Violation{Link: l, Need: need, Have: have})
		}
	}
	return out
}

// HoseDemand is a per-endpoint aggregate guarantee: the endpoint may
// send up to Egress and receive up to Ingress regardless of the
// destination mix.
type HoseDemand struct {
	Endpoint topology.CompID
	Egress   topology.Rate
	Ingress  topology.Rate
}

// ProvisionHose compiles a set of hose demands into a per-link
// reservation under fixed shortest-path routing. For each directed
// link, the worst-case load is bounded by
//
//	min( sum of egress over sources routed through it,
//	     sum of ingress over destinations routed through it )
//
// — the classic hose-model provisioning bound (Duffield et al.),
// applied to the intra-host topology.
func ProvisionHose(topo *topology.Topology, demands []HoseDemand) (Reservation, error) {
	if len(demands) < 2 {
		return Reservation{}, fmt.Errorf("resmodel: hose provisioning needs >= 2 endpoints")
	}
	seen := make(map[topology.CompID]bool)
	for _, d := range demands {
		if topo.Component(d.Endpoint) == nil {
			return Reservation{}, fmt.Errorf("resmodel: unknown endpoint %q", d.Endpoint)
		}
		if d.Egress < 0 || d.Ingress < 0 {
			return Reservation{}, fmt.Errorf("resmodel: negative hose rate for %q", d.Endpoint)
		}
		if seen[d.Endpoint] {
			return Reservation{}, fmt.Errorf("resmodel: duplicate endpoint %q", d.Endpoint)
		}
		seen[d.Endpoint] = true
	}
	type sets struct {
		srcs map[topology.CompID]bool
		dsts map[topology.CompID]bool
	}
	perLink := make(map[topology.LinkID]*sets)
	for _, a := range demands {
		for _, b := range demands {
			if a.Endpoint == b.Endpoint {
				continue
			}
			p, err := topo.ShortestPath(a.Endpoint, b.Endpoint)
			if err != nil {
				return Reservation{}, fmt.Errorf("resmodel: no path %s -> %s: %w", a.Endpoint, b.Endpoint, err)
			}
			for _, l := range p.Links {
				s := perLink[l.ID]
				if s == nil {
					s = &sets{srcs: make(map[topology.CompID]bool), dsts: make(map[topology.CompID]bool)}
					perLink[l.ID] = s
				}
				s.srcs[a.Endpoint] = true
				s.dsts[b.Endpoint] = true
			}
		}
	}
	eg := make(map[topology.CompID]topology.Rate, len(demands))
	in := make(map[topology.CompID]topology.Rate, len(demands))
	for _, d := range demands {
		eg[d.Endpoint] = d.Egress
		in[d.Endpoint] = d.Ingress
	}
	res := NewReservation()
	for l, s := range perLink {
		var egSum, inSum topology.Rate
		for e := range s.srcs {
			egSum += eg[e]
		}
		for e := range s.dsts {
			inSum += in[e]
		}
		need := egSum
		if inSum < need {
			need = inSum
		}
		if need > 0 {
			res.Links[l] = need
		}
	}
	return res, nil
}
