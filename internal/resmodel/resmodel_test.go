package resmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestReservationBasics(t *testing.T) {
	r := NewReservation()
	r.Add("a->b", 10)
	r.Add("a->b", 5)
	if r.Rate("a->b") != 15 {
		t.Fatalf("accumulated rate %v", r.Rate("a->b"))
	}
	if r.Rate("x->y") != 0 {
		t.Fatal("absent link nonzero")
	}
	other := NewReservation()
	other.Add("a->b", 1)
	other.Add("c->d", 2)
	r.Merge(other)
	if r.Rate("a->b") != 16 || r.Rate("c->d") != 2 {
		t.Fatalf("merge wrong: %v", r.Links)
	}
	cl := r.Clone()
	cl.Add("a->b", 100)
	if r.Rate("a->b") != 16 {
		t.Fatal("clone aliases original")
	}
	if r.Total() != 18 {
		t.Fatalf("total %v", r.Total())
	}
	ids := r.LinkIDs()
	if len(ids) != 2 || ids[0] != "a->b" || ids[1] != "c->d" {
		t.Fatalf("LinkIDs %v", ids)
	}
}

func TestAddPipe(t *testing.T) {
	topo := topology.TwoSocketServer()
	p, err := topo.ShortestPath("gpu0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	r := NewReservation()
	r.AddPipe(p, 100)
	if len(r.Links) != p.Hops() {
		t.Fatalf("pipe reserved %d links, path has %d", len(r.Links), p.Hops())
	}
	for _, l := range p.Links {
		if r.Rate(l.ID) != 100 {
			t.Fatalf("link %s reserved %v", l.ID, r.Rate(l.ID))
		}
	}
}

func TestCheckFit(t *testing.T) {
	r := NewReservation()
	r.Add("a->b", 10)
	r.Add("c->d", 20)
	free := map[topology.LinkID]topology.Rate{"a->b": 15, "c->d": 20}
	if v := CheckFit(r, free); len(v) != 0 {
		t.Fatalf("fitting reservation violated: %v", v)
	}
	free["c->d"] = 19
	v := CheckFit(r, free)
	if len(v) != 1 || v[0].Link != "c->d" || v[0].Need != 20 || v[0].Have != 19 {
		t.Fatalf("violations %v", v)
	}
	// Unknown link is a violation.
	r.Add("zz->qq", 1)
	if v := CheckFit(r, free); len(v) != 2 {
		t.Fatalf("missing-link violation not reported: %v", v)
	}
	if v[0].String() == "" {
		t.Fatal("violation string empty")
	}
}

func TestProvisionHoseValidation(t *testing.T) {
	topo := topology.TwoSocketServer()
	if _, err := ProvisionHose(topo, []HoseDemand{{Endpoint: "gpu0", Egress: 1}}); err == nil {
		t.Fatal("single endpoint accepted")
	}
	if _, err := ProvisionHose(topo, []HoseDemand{
		{Endpoint: "gpu0", Egress: 1}, {Endpoint: "nope", Egress: 1},
	}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if _, err := ProvisionHose(topo, []HoseDemand{
		{Endpoint: "gpu0", Egress: -1}, {Endpoint: "gpu1", Egress: 1},
	}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := ProvisionHose(topo, []HoseDemand{
		{Endpoint: "gpu0", Egress: 1}, {Endpoint: "gpu0", Egress: 1},
	}); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestProvisionHoseTwoEndpoints(t *testing.T) {
	topo := topology.TwoSocketServer()
	res, err := ProvisionHose(topo, []HoseDemand{
		{Endpoint: "gpu0", Egress: topology.GBps(10), Ingress: topology.GBps(10)},
		{Endpoint: "nic0", Egress: topology.GBps(4), Ingress: topology.GBps(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// On the gpu0 -> nic0 path, worst-case load = min(gpu egress 10,
	// nic ingress 4) = 4 GB/s.
	p, _ := topo.ShortestPath("gpu0", "nic0")
	for _, l := range p.Links {
		if res.Rate(l.ID) != topology.GBps(4) {
			t.Fatalf("link %s reserved %v, want 4GB/s", l.ID, res.Rate(l.ID))
		}
	}
	// Reverse direction: min(nic egress 4, gpu ingress 10) = 4.
	rp, _ := topo.ShortestPath("nic0", "gpu0")
	for _, l := range rp.Links {
		if res.Rate(l.ID) != topology.GBps(4) {
			t.Fatalf("reverse link %s reserved %v", l.ID, res.Rate(l.ID))
		}
	}
}

func TestProvisionHoseSharedLinkBound(t *testing.T) {
	// Three endpoints on one switch: the shared upstream link's
	// requirement is bounded by the ingress sum of the far side, not
	// the (larger) egress sum of the near side.
	topo := topology.TwoSocketServer()
	res, err := ProvisionHose(topo, []HoseDemand{
		{Endpoint: "nic0", Egress: topology.GBps(10), Ingress: topology.GBps(2)},
		{Endpoint: "ssd0", Egress: topology.GBps(10), Ingress: topology.GBps(2)},
		{Endpoint: "gpu0", Egress: topology.GBps(3), Ingress: topology.GBps(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// pcieswitch0 -> rootport0 carries nic0+ssd0 egress (20) toward
	// gpu0 whose ingress is only 3: requirement must be 3.
	up := topology.LinkID("pcieswitch0->socket0.rootport0")
	if res.Rate(up) != topology.GBps(3) {
		t.Fatalf("shared upstream reserved %v, want min(20,3)=3GB/s", res.Rate(up))
	}
}

func TestProvisionHoseZeroRatesYieldNoReservation(t *testing.T) {
	topo := topology.TwoSocketServer()
	res, err := ProvisionHose(topo, []HoseDemand{
		{Endpoint: "gpu0"}, {Endpoint: "nic0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Links) != 0 {
		t.Fatalf("zero hoses reserved %d links", len(res.Links))
	}
}

// Property: hose reservations never exceed the total egress of all
// endpoints on any link, and are symmetric for symmetric demands.
func TestPropertyHoseBounded(t *testing.T) {
	topo := topology.TwoSocketServer()
	eps := []topology.CompID{"gpu0", "gpu1", "nic0", "nic1", "ssd0"}
	f := func(rates [5]uint8) bool {
		demands := make([]HoseDemand, len(eps))
		var totalEg topology.Rate
		for i, e := range eps {
			r := topology.Rate(rates[i]) * 1e8
			demands[i] = HoseDemand{Endpoint: e, Egress: r, Ingress: r}
			totalEg += r
		}
		res, err := ProvisionHose(topo, demands)
		if err != nil {
			return false
		}
		for _, v := range res.Links {
			if v > totalEg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
