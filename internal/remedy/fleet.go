package remedy

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/simtime"
)

// Quarantiner fences hosts out of an epoch loop — satisfied by both
// *fleet.Runner and *fleet.ShardedRunner, so the controller works
// unchanged over the single-barrier and sharded engines.
type Quarantiner interface {
	Quarantine(name string, reason error) error
}

// FleetController drives one per-host remediation controller per
// fleet host, each acting through that host's journaled session, plus
// fleet-scoped verbs (cross-host rebalance, quarantine) exposed to the
// per-host planners through the FleetHook. StepAll must be called
// between epoch barriers — never while the runner is mid-epoch — and
// steps hosts in name order, so the same seed and policy produce
// byte-identical per-host journals regardless of the runner's worker
// count (or, under sharding, its shard count).
type FleetController struct {
	flt    *fleet.Fleet
	runner Quarantiner
	names  []string
	ctrls  map[string]*Controller
}

// NewFleet attaches one controller per current fleet host. Hosts must
// be session-backed (journaled); the runner may be nil, which disables
// the quarantine action.
func NewFleet(flt *fleet.Fleet, runner Quarantiner, pol Policy) (*FleetController, error) {
	fc := &FleetController{flt: flt, runner: runner, ctrls: make(map[string]*Controller)}
	for _, h := range flt.Hosts() {
		if h.Sess == nil {
			return nil, fmt.Errorf("remedy: host %s has no session; remediation must journal", h.Name)
		}
		ctrl, err := New(h.Mgr, SessionActuator{Sess: h.Sess}, Options{
			Policy: pol, Host: h.Name,
			Fleet: &hostHook{fc: fc, name: h.Name},
		})
		if err != nil {
			fc.Close()
			return nil, err
		}
		fc.names = append(fc.names, h.Name)
		fc.ctrls[h.Name] = ctrl
	}
	sort.Strings(fc.names)
	return fc, nil
}

// Close detaches every per-host controller.
func (fc *FleetController) Close() {
	for _, c := range fc.ctrls {
		c.Close()
	}
}

// StepAll runs one control iteration on every host in name order.
// Call it only between epoch barriers.
func (fc *FleetController) StepAll() {
	for _, name := range fc.names {
		fc.ctrls[name].Step()
	}
}

// Controller returns the per-host controller, or nil.
func (fc *FleetController) Controller(host string) *Controller { return fc.ctrls[host] }

// Hosts returns the controlled host names in order.
func (fc *FleetController) Hosts() []string {
	return append([]string(nil), fc.names...)
}

// SetPolicy swaps the policy on every per-host controller.
func (fc *FleetController) SetPolicy(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, name := range fc.names {
		fc.ctrls[name].pol = p
	}
	return nil
}

// Policy returns the active policy (uniform across hosts).
func (fc *FleetController) Policy() Policy {
	for _, name := range fc.names {
		return fc.ctrls[name].pol
	}
	return Policy{}
}

// Stats sums the per-host accounting.
func (fc *FleetController) Stats() Stats {
	var out Stats
	for _, name := range fc.names {
		s := fc.ctrls[name].Stats()
		out.Incidents += s.Incidents
		out.Open += s.Open
		out.Resolved += s.Resolved
		out.Proposed += s.Proposed
		out.Executed += s.Executed
		out.Rejected += s.Rejected
		out.Failed += s.Failed
		out.Suppressed += s.Suppressed
		out.Steps += s.Steps
	}
	return out
}

// Degraded reports whether any host has an open incident.
func (fc *FleetController) Degraded() bool {
	for _, name := range fc.names {
		if fc.ctrls[name].Degraded() {
			return true
		}
	}
	return false
}

// MTTRs concatenates per-host MTTR series in host-name order.
func (fc *FleetController) MTTRs() []simtime.Duration {
	var out []simtime.Duration
	for _, name := range fc.names {
		out = append(out, fc.ctrls[name].MTTRs()...)
	}
	return out
}

// hostHook binds fleet-scoped verbs to one host.
type hostHook struct {
	fc   *FleetController
	name string
}

// RebalanceHost migrates this host's anomaly-affected tenants to the
// least-pressured healthy host that will take them.
func (hk *hostHook) RebalanceHost() (int, error) {
	h := hk.fc.flt.Host(hk.name)
	if h == nil {
		return 0, fmt.Errorf("remedy: unknown host %s", hk.name)
	}
	moved := 0
	for _, tenant := range fleet.AffectedTenants(h) {
		candidates := hk.fc.flt.Hosts()
		sort.SliceStable(candidates, func(i, j int) bool {
			return candidates[i].Pressure() < candidates[j].Pressure()
		})
		for _, dst := range candidates {
			if dst.Name == hk.name || len(dst.Mgr.Anomaly().Detections()) > 0 {
				continue
			}
			if _, err := hk.fc.flt.Migrate(tenant, dst.Name); err == nil {
				moved++
				break
			}
		}
	}
	return moved, nil
}

// QuarantineHost fences this host out of the epoch loop.
func (hk *hostHook) QuarantineHost(reason string) error {
	if hk.fc.runner == nil {
		return fmt.Errorf("remedy: no runner; cannot quarantine")
	}
	return hk.fc.runner.Quarantine(hk.name, fmt.Errorf("%s", reason))
}
