package remedy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func benchController(b *testing.B) (*core.Manager, *Controller) {
	b.Helper()
	m := newManager(b)
	c, err := New(m, ManagerActuator{Mgr: m}, Options{Policy: DefaultPolicy()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if _, err := m.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(8)},
	}); err != nil {
		b.Fatal(err)
	}
	warmup(m)
	return m, c
}

// BenchmarkRemedyStepIdle measures the controller's steady-state
// overhead: the per-step cost paid on every healthy host. This is the
// loop's standing tax, so its allocation budget is zero.
func BenchmarkRemedyStepIdle(b *testing.B) {
	_, c := benchController(b)
	c.Step() // absorb one-time lazy work before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkRemedyMTTR runs full fault-heal cycles (degrade UPI,
// detect, localize, roll back, hysteresis-resolve) and reports the
// MTTR distribution. MTTR is virtual time — machine-independent and
// CI-gateable — so the p50/p99 land in BENCH_remedy.json as budgets.
func BenchmarkRemedyMTTR(b *testing.B) {
	m, c := benchController(b)
	period := core.DefaultOptions().Anomaly.Period
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resolved := c.Stats().Resolved
		if err := m.Fabric().DegradeLink("cpu0->cpu1", 0, 50*simtime.Microsecond); err != nil {
			b.Fatal(err)
		}
		for step := 0; step < 500; step++ {
			m.Engine().RunFor(period)
			c.Step()
			if c.Stats().Resolved > resolved {
				break
			}
		}
		if c.Stats().Resolved == resolved {
			b.Fatalf("cycle %d never resolved: %+v", i, c.Stats())
		}
	}
	b.StopTimer()
	ds := c.MTTRs()
	if len(ds) == 0 {
		b.Fatal("no MTTR samples")
	}
	b.ReportMetric(float64(Percentile(ds, 50))/float64(simtime.Microsecond), "mttr_p50_us")
	b.ReportMetric(float64(Percentile(ds, 99))/float64(simtime.Microsecond), "mttr_p99_us")
}
