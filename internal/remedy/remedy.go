package remedy

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

// Actuator executes remediation verbs. The journaled session actuator
// is the production path (every action becomes a journal entry and a
// correlated span); the direct manager actuator serves declarative
// drills that run a bare manager.
type Actuator interface {
	RestoreLink(link string) error
	// MigrateTenant re-places an admitted tenant's intents while
	// avoiding the named links (both directions are implied by each
	// entry). Implementations must not lose the tenant on failure.
	MigrateTenant(tenant string, targets []intent.Target, avoid []string) error
	EvictTenant(tenant string) error
}

// SessionActuator executes through the journaled snap.Session path:
// every remediation is a journal entry, replayable and span-correlated.
type SessionActuator struct{ Sess *snap.Session }

// RestoreLink implements Actuator.
func (a SessionActuator) RestoreLink(link string) error { return a.Sess.RestoreLink(link) }

// MigrateTenant implements Actuator: evict, then re-admit under the
// avoid constraint. If the constrained re-admission fails (the planner
// should have prevented this), the tenant is re-admitted without the
// constraint so it is never lost; only successful admissions journal.
func (a SessionActuator) MigrateTenant(tenant string, targets []intent.Target, avoid []string) error {
	if err := a.Sess.Evict(tenant); err != nil {
		return err
	}
	if _, err := a.Sess.AdmitAvoiding(tenant, targets, avoid); err != nil {
		if _, err2 := a.Sess.Admit(tenant, targets); err2 != nil {
			return fmt.Errorf("remedy: constrained re-admit: %v; recovery re-admit: %v", err, err2)
		}
		return err
	}
	return nil
}

// EvictTenant implements Actuator.
func (a SessionActuator) EvictTenant(tenant string) error { return a.Sess.Evict(tenant) }

// ManagerActuator acts directly on a bare manager (no journal) — used
// by the declarative scenario runner, which drives the manager
// directly rather than through a session.
type ManagerActuator struct{ Mgr *core.Manager }

// RestoreLink implements Actuator.
func (a ManagerActuator) RestoreLink(link string) error {
	return a.Mgr.Fabric().RestoreLink(topology.LinkID(link))
}

// MigrateTenant implements Actuator.
func (a ManagerActuator) MigrateTenant(tenant string, targets []intent.Target, avoid []string) error {
	id := fabric.TenantID(tenant)
	ids := make([]topology.LinkID, len(avoid))
	for i, l := range avoid {
		ids[i] = topology.LinkID(l)
	}
	if err := a.Mgr.Evict(id); err != nil {
		return err
	}
	if _, err := a.Mgr.AdmitAvoiding(id, targets, ids); err != nil {
		if _, err2 := a.Mgr.Admit(id, targets); err2 != nil {
			return fmt.Errorf("remedy: constrained re-admit: %v; recovery re-admit: %v", err, err2)
		}
		return err
	}
	return nil
}

// EvictTenant implements Actuator.
func (a ManagerActuator) EvictTenant(tenant string) error {
	return a.Mgr.Evict(fabric.TenantID(tenant))
}

// FleetHook gives a per-host controller access to fleet-scoped verbs.
// Nil on single hosts; the fleet controller binds one per host.
type FleetHook interface {
	// RebalanceHost migrates this host's affected tenants to healthy
	// hosts; returns how many moved.
	RebalanceHost() (int, error)
	// QuarantineHost fences this host out of the epoch loop.
	QuarantineHost(reason string) error
}

// ActionRecord is one executed (or failed) remediation.
type ActionRecord struct {
	At     simtime.Time `json:"at_ns"`
	Action ActionKind   `json:"action"`
	Detail string       `json:"detail,omitempty"`
	Err    string       `json:"error,omitempty"`
}

// Incident is the controller's record of one fault, from injection to
// invariant restored.
type Incident struct {
	// Subject is the canonical (lexicographically smaller direction)
	// link ID the incident is keyed on.
	Subject string `json:"subject"`
	Class   string `json:"class"`
	// Covered reports whether the heartbeat mesh traverses the subject
	// at all: an uncovered fault is invisible to §3.1 monitoring and
	// the controller cannot be expected to remediate it.
	Covered bool `json:"covered"`
	// FaultKnown is true when the controller observed the injection
	// trace event; MTTR is then measured from FaultAt, otherwise from
	// DetectAt (the earliest the system could know).
	FaultKnown bool           `json:"fault_known"`
	FaultAt    simtime.Time   `json:"fault_at_ns"`
	DetectAt   simtime.Time   `json:"detect_at_ns"`
	LocalizeAt simtime.Time   `json:"localize_at_ns"`
	PlanAt     simtime.Time   `json:"plan_at_ns"`
	ActAt      simtime.Time   `json:"act_at_ns"`
	ResolvedAt simtime.Time   `json:"resolved_at_ns"`
	Resolved   bool           `json:"resolved"`
	Detected   bool           `json:"detected"`
	Actions    []ActionRecord `json:"actions,omitempty"`

	// healthySteps counts consecutive steps the invariant held;
	// firstHealthyAt is when the current healthy run began (that
	// instant, not the hysteresis-confirmed one, is the MTTR endpoint).
	healthySteps   int
	firstHealthyAt simtime.Time
	executed       int
	// rolledBackAt is the last successful link restore, so a fault
	// event arriving after a completed repair reads as a re-injection
	// (new episode) rather than a continuation.
	rolledBackAt simtime.Time
}

// MTTR returns the incident's measured time to repair, and whether it
// is meaningful (resolved).
func (in *Incident) MTTR() (simtime.Duration, bool) {
	if !in.Resolved {
		return 0, false
	}
	basis := in.DetectAt
	if in.FaultKnown {
		basis = in.FaultAt
	}
	return in.ResolvedAt.Sub(basis), true
}

// Stats is the controller's cumulative accounting.
type Stats struct {
	Incidents  int    `json:"incidents"`
	Open       int    `json:"open"`
	Resolved   int    `json:"resolved"`
	Proposed   uint64 `json:"actions_proposed"`
	Executed   uint64 `json:"actions_executed"`
	Rejected   uint64 `json:"actions_rejected"`
	Failed     uint64 `json:"actions_failed"`
	Suppressed uint64 `json:"actions_suppressed"`
	Steps      uint64 `json:"steps"`
}

// Controller is the closed remediation loop over one host. It is not
// goroutine-safe: callers serialize Step with every other access, the
// same discipline the snap.Session demands. Step must be invoked at
// deterministic virtual times (after each chaos advance, between fleet
// epoch barriers) for journals to reproduce across runs.
type Controller struct {
	mgr    *core.Manager
	act    Actuator
	pol    Policy
	host   string
	fleet  FleetHook
	sub    *obs.Subscription
	topo   *topology.Topology
	tracer *obs.Tracer

	open      map[string]*Incident
	order     []string // insertion-ordered open subjects
	archive   []*Incident
	lastTouch map[string]simtime.Time
	detIdx    int
	stats     Stats

	hMTTR     *obs.Histogram
	hDetect   *obs.Histogram
	hLocalize *obs.Histogram
	hPlan     *obs.Histogram
	hAct      *obs.Histogram
	hStepWall *obs.Histogram
	cProposed *obs.Counter
	cExecuted *obs.Counter
	cRejected *obs.Counter
	cFailed   *obs.Counter
	cSuppress *obs.Counter
	cIncident *obs.Counter
	cResolved *obs.Counter
}

// Options configures a controller.
type Options struct {
	Policy Policy
	// Host names this controller's host in trace events (fleet scope).
	Host string
	// Fleet, when set, enables the fleet-scoped actions.
	Fleet FleetHook
	// BusCapacity sizes the event-bus subscription ring (default 4096).
	BusCapacity int
}

// New attaches a controller to a manager, subscribing to the obs
// event bus (created and wired if the tracer has none) for fault and
// verdict events. The actuator decides whether actions are journaled.
func New(mgr *core.Manager, act Actuator, opts Options) (*Controller, error) {
	if err := opts.Policy.Validate(); err != nil {
		return nil, err
	}
	tr := mgr.Obs().Tracer
	bus := tr.Bus()
	if bus == nil {
		bus = obs.NewBus(1024)
		tr.SetBus(bus)
	}
	capacity := opts.BusCapacity
	if capacity <= 0 {
		capacity = 4096
	}
	c := &Controller{
		mgr: mgr, act: act, pol: opts.Policy, host: opts.Host, fleet: opts.Fleet,
		sub: bus.Subscribe(capacity), topo: mgr.Topology(), tracer: tr,
		open:      make(map[string]*Incident),
		lastTouch: make(map[string]simtime.Time),
	}
	reg := mgr.Obs().Registry
	c.hMTTR = reg.Histogram("ihnet_remedy_mttr_us",
		"Virtual microseconds from fault injection (or detection, when the injection was unobserved) to invariant restored.")
	c.hDetect = reg.Histogram("ihnet_remedy_stage_detect_us",
		"Virtual microseconds from fault injection to anomaly detection.")
	c.hLocalize = reg.Histogram("ihnet_remedy_stage_localize_us",
		"Virtual microseconds from detection to localization.")
	c.hPlan = reg.Histogram("ihnet_remedy_stage_plan_us",
		"Virtual microseconds from localization to the first plan decision.")
	c.hAct = reg.Histogram("ihnet_remedy_stage_act_us",
		"Virtual microseconds from plan decision to action executed.")
	c.hStepWall = reg.Histogram("ihnet_remedy_step_wall_latency_us",
		"Wall microseconds per controller step (the loop's CPU overhead).")
	c.cProposed = reg.Counter("ihnet_remedy_actions_proposed_total",
		"Candidate actions scored by the dry-run planner.")
	c.cExecuted = reg.Counter("ihnet_remedy_actions_executed_total",
		"Remediation actions executed.")
	c.cRejected = reg.Counter("ihnet_remedy_actions_rejected_total",
		"Candidate actions rejected as inapplicable or infeasible.")
	c.cFailed = reg.Counter("ihnet_remedy_actions_failed_total",
		"Executed actions that returned an error.")
	c.cSuppress = reg.Counter("ihnet_remedy_actions_suppressed_total",
		"Action opportunities suppressed by cooldown or escalation caps.")
	c.cIncident = reg.Counter("ihnet_remedy_incidents_total",
		"Incidents opened (fault events and localized anomalies).")
	c.cResolved = reg.Counter("ihnet_remedy_incidents_resolved_total",
		"Incidents whose invariant was restored.")
	reg.GaugeFunc("ihnet_remedy_incidents_open",
		"Incidents currently open.",
		func() float64 { return float64(len(c.open)) })
	return c, nil
}

// Close detaches the bus subscription.
func (c *Controller) Close() {
	if c.sub != nil {
		c.sub.Close()
	}
}

// Policy returns the active policy.
func (c *Controller) Policy() Policy { return c.pol }

// SetPolicy swaps the rule table after validating it.
func (c *Controller) SetPolicy(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.pol = p
	return nil
}

// Stats returns cumulative accounting.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Open = len(c.open)
	return s
}

// Incidents returns all incidents, archived first, then open in
// insertion order. The returned records are copies.
func (c *Controller) Incidents() []Incident {
	out := make([]Incident, 0, len(c.archive)+len(c.order))
	for _, in := range c.archive {
		out = append(out, *in)
	}
	for _, s := range c.order {
		out = append(out, *c.open[s])
	}
	return out
}

// Degraded reports whether any incident is open — the healthz signal.
func (c *Controller) Degraded() bool { return len(c.open) > 0 }

// canonical maps a directed link ID to the incident key: the
// lexicographically smaller of the two directions, so fault events and
// localization verdicts that name opposite directions meet on one
// incident.
func (c *Controller) canonical(id string) string {
	if l := c.topo.Link(topology.LinkID(id)); l != nil && string(l.Reverse) < id {
		return string(l.Reverse)
	}
	return id
}

// reverse returns the opposite direction of a link ID (itself when the
// topology does not know the link).
func (c *Controller) reverse(id string) string {
	if l := c.topo.Link(topology.LinkID(id)); l != nil {
		return string(l.Reverse)
	}
	return id
}

// Step runs one deterministic control iteration: drain verdict events,
// update incident lifecycles, plan and act. The wall cost of the whole
// iteration lands in ihnet_remedy_step_wall_latency_us.
func (c *Controller) Step() {
	start := time.Now()
	now := c.mgr.Engine().Now()
	c.stats.Steps++
	c.drainEvents()
	c.observeDetections()
	c.localizeFromRanking(now)
	c.updateIncidents(now)
	c.planAndAct(now)
	c.hStepWall.Observe(float64(time.Since(start)) / 1e3)
}

// drainEvents consumes the bus: fault injections open incidents with
// exact virtual timestamps; detection events trigger a structured read
// of the platform's verdicts.
func (c *Controller) drainEvents() {
	for _, be := range c.sub.Drain() {
		ev := be.Event
		switch ev.Kind {
		case obs.KindLinkFail:
			c.observeFault(ev, ClassLinkFail)
		case obs.KindLinkDegrade:
			c.observeFault(ev, ClassLinkDegrade)
		}
	}
}

// observeFault opens (or escalates) the incident for an injected
// fault. The event's virtual timestamp is the MTTR clock's start.
func (c *Controller) observeFault(ev obs.Event, class string) {
	subject := c.canonical(ev.Subject)
	if in, ok := c.open[subject]; ok {
		// A degrade escalating to a hard failure keeps the original
		// fault timestamp: the incident began at the first injection.
		if class == ClassLinkFail {
			in.Class = ClassLinkFail
		}
		// A fault landing after a completed repair (the link was
		// restored, even if hysteresis had not confirmed yet) is a
		// re-injection: the MTTR clock re-arms for the new episode and
		// the escalation budget resets with it — the cooldown, not the
		// per-episode cap, is what paces a break-fix-break adversary.
		if in.healthySteps > 0 || in.rolledBackAt > in.FaultAt {
			in.FaultKnown = true
			in.FaultAt = ev.Virtual
			in.executed = 0
		}
		in.healthySteps = 0
		return
	}
	c.openIncident(&Incident{
		Subject: subject, Class: class,
		Covered:    c.mgr.Anomaly().CoversLink(topology.LinkID(ev.Subject)),
		FaultKnown: true, FaultAt: ev.Virtual,
	})
}

// observeDetections folds new anomaly verdicts into incidents. A
// detection carries a ranked suspect list, and in a tree topology the
// top rank often lands on a shared upstream link rather than the
// faulted one, so the controller cross-checks the ranking against the
// fabric's link health: every open incident named anywhere in the
// ranking is stamped localized, and a new incident opens on the
// highest-ranked suspect the fabric corroborates as unhealthy.
func (c *Controller) observeDetections() {
	plat := c.mgr.Anomaly()
	if plat.DetectionCount() == c.detIdx {
		return
	}
	dets := plat.Detections()
	unhealthy := c.unhealthySet()
	for ; c.detIdx < len(dets); c.detIdx++ {
		d := dets[c.detIdx]
		for _, s := range d.Suspects {
			subject := c.canonical(string(s.Link))
			if in, ok := c.open[subject]; ok {
				c.markDetected(in, d.At)
				in.healthySteps = 0
			}
		}
		for _, s := range d.Suspects {
			subject := c.canonical(string(s.Link))
			if _, ok := c.open[subject]; ok {
				continue
			}
			if !unhealthy[subject] && !unhealthy[c.reverse(subject)] {
				continue // mis-localization: the fabric says healthy
			}
			class := ClassLinkDegrade
			if d.Lost {
				class = ClassLinkFail
			}
			in := &Incident{
				Subject: subject, Class: class,
				Covered: true, // it was just localized, so it is covered
			}
			c.openIncident(in)
			c.markDetected(in, d.At)
			break
		}
	}
}

// localizeFromRanking consults the live suspect ranking for open
// incidents that no detection event has localized yet. Detections are
// edge-triggered per pair: a fault arriving while every covering pair
// is already alerted fires no new detection, but the voting ranking
// still converges on it.
func (c *Controller) localizeFromRanking(now simtime.Time) {
	pending := false
	for _, subject := range c.order {
		if !c.open[subject].Detected {
			pending = true
			break
		}
	}
	if !pending {
		return
	}
	for _, s := range c.mgr.Anomaly().Suspects() {
		subject := c.canonical(string(s.Link))
		if in, ok := c.open[subject]; ok && !in.Detected {
			c.markDetected(in, now)
		}
	}
}

// markDetected stamps detect/localize on first localization.
func (c *Controller) markDetected(in *Incident, at simtime.Time) {
	if in.Detected {
		return
	}
	in.Detected = true
	in.DetectAt = at
	in.LocalizeAt = at
	if in.FaultKnown {
		c.hDetect.Observe(float64(in.DetectAt.Sub(in.FaultAt)) / float64(simtime.Microsecond))
	}
	c.hLocalize.Observe(float64(in.LocalizeAt.Sub(in.DetectAt)) / float64(simtime.Microsecond))
}

// unhealthySet snapshots the fabric's failed/degraded directed links.
func (c *Controller) unhealthySet() map[string]bool {
	out := make(map[string]bool)
	for _, id := range c.mgr.Fabric().UnhealthyLinks() {
		out[string(id)] = true
	}
	return out
}

func (c *Controller) openIncident(in *Incident) {
	c.open[in.Subject] = in
	c.order = append(c.order, in.Subject)
	c.stats.Incidents++
	c.cIncident.Inc()
}

// updateIncidents applies the resolve check: an incident is healthy
// when its link carries no failure or degradation in either direction
// and no alerted heartbeat pair still implicates it — an alerted pair
// whose path crosses a different currently-unhealthy link is explained
// by that fault, not this one, so it does not hold the incident open.
// HysteresisSteps consecutive healthy steps resolve it; the MTTR
// endpoint is the first step of that run, not the confirmation step.
func (c *Controller) updateIncidents(now simtime.Time) {
	if len(c.open) == 0 {
		return
	}
	unhealthy := c.unhealthySet()
	otherUnhealthy := func(l topology.LinkID) bool { return unhealthy[string(l)] }
	plat := c.mgr.Anomaly()
	kept := c.order[:0]
	for _, subject := range c.order {
		in := c.open[subject]
		healthy := !unhealthy[subject] && !unhealthy[c.reverse(subject)] &&
			!plat.AlertedAttributableToLink(topology.LinkID(subject), otherUnhealthy)
		if !healthy {
			in.healthySteps = 0
			kept = append(kept, subject)
			continue
		}
		if in.healthySteps == 0 {
			in.firstHealthyAt = now
		}
		in.healthySteps++
		if in.healthySteps < c.pol.HysteresisSteps {
			kept = append(kept, subject)
			continue
		}
		in.Resolved = true
		in.ResolvedAt = in.firstHealthyAt
		mttr, _ := in.MTTR()
		c.hMTTR.Observe(float64(mttr) / float64(simtime.Microsecond))
		c.stats.Resolved++
		c.cResolved.Inc()
		c.lastTouch[subject] = now
		delete(c.open, subject)
		c.archive = append(c.archive, in)
		if c.tracer.Enabled() {
			c.tracer.Emit(obs.Event{
				Kind: obs.KindRemedyResolve, Virtual: now,
				Subject: subject, Host: c.host,
				Detail: fmt.Sprintf("class=%s actions=%d", in.Class, in.executed),
				Value:  float64(mttr) / float64(simtime.Microsecond),
			})
		}
	}
	c.order = kept
}

// candidate is one scored planner output.
type candidate struct {
	action ActionKind
	score  float64
	detail string
	// exec runs the action; set only on applicable candidates.
	exec func() (string, error)
}

// planAndAct plans and executes at most one action per open, localized
// incident per step, under the cooldown and escalation guards.
func (c *Controller) planAndAct(now simtime.Time) {
	for _, subject := range c.order {
		in := c.open[subject]
		if !in.Detected || in.Resolved {
			continue
		}
		if in.executed >= c.pol.MaxActionsPerIncident {
			c.stats.Suppressed++
			c.cSuppress.Inc()
			continue
		}
		if last, ok := c.lastTouch[subject]; ok {
			if now.Sub(last) < simtime.Duration(c.pol.CooldownUs)*simtime.Microsecond {
				c.stats.Suppressed++
				c.cSuppress.Inc()
				continue
			}
		}
		rule := c.pol.rule(in.Class)
		if rule == nil {
			continue
		}
		cands := c.plan(in, rule)
		c.stats.Proposed += uint64(len(cands))
		c.cProposed.Add(uint64(len(cands)))
		best := -1
		for i, cd := range cands {
			if cd.exec == nil {
				c.stats.Rejected++
				c.cRejected.Inc()
				continue
			}
			if best < 0 || cd.score > cands[best].score {
				best = i
			}
		}
		if in.PlanAt == 0 {
			in.PlanAt = now
			c.hPlan.Observe(float64(now.Sub(in.LocalizeAt)) / float64(simtime.Microsecond))
		}
		if c.tracer.Enabled() {
			c.tracer.Emit(obs.Event{
				Kind: obs.KindRemedyPlan, Virtual: now,
				Subject: subject, Host: c.host,
				Detail: planDetail(cands, best),
				Value:  float64(len(cands)),
			})
		}
		if best < 0 {
			continue
		}
		chosen := cands[best]
		detail, err := chosen.exec()
		rec := ActionRecord{At: now, Action: chosen.action, Detail: detail}
		if err != nil {
			rec.Err = err.Error()
			c.stats.Failed++
			c.cFailed.Inc()
		} else {
			in.executed++
			c.stats.Executed++
			c.cExecuted.Inc()
			if chosen.action == ActionRollback {
				in.rolledBackAt = now
			}
			if in.ActAt == 0 {
				in.ActAt = now
				c.hAct.Observe(float64(now.Sub(in.PlanAt)) / float64(simtime.Microsecond))
			}
		}
		in.Actions = append(in.Actions, rec)
		c.lastTouch[subject] = now
		if c.tracer.Enabled() {
			ev := obs.Event{
				Kind: obs.KindRemedyAct, Virtual: now,
				Subject: subject, Host: c.host,
				Detail: string(chosen.action) + ": " + detail,
			}
			if err != nil {
				ev.Detail = string(chosen.action) + " failed: " + err.Error()
			}
			c.tracer.Emit(ev)
		}
	}
}

func planDetail(cands []candidate, best int) string {
	var b strings.Builder
	for i, cd := range cands {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s=%.1f", cd.action, cd.score)
		if cd.exec == nil {
			b.WriteString(" (" + cd.detail + ")")
		}
	}
	if best >= 0 {
		b.WriteString(" -> " + string(cands[best].action))
	} else {
		b.WriteString(" -> none")
	}
	return b.String()
}

// plan scores each candidate action in the rule, dry-running against
// current fabric/arbiter state. Base score encodes rule order; the
// feasibility component (0..10) comes from the dry run.
func (c *Controller) plan(in *Incident, rule *Rule) []candidate {
	subject := in.Subject
	avoid := []string{subject, c.reverse(subject)}
	affected := c.affectedTenants(subject)
	unhealthy := c.linkUnhealthy(subject)
	out := make([]candidate, 0, len(rule.Actions))
	for i, action := range rule.Actions {
		base := float64(len(rule.Actions)-i) * 10
		cd := candidate{action: action}
		switch action {
		case ActionRollback:
			if !unhealthy {
				cd.detail = "link already healthy"
				break
			}
			cd.score = base + 9
			cd.exec = func() (string, error) {
				if err := c.act.RestoreLink(subject); err != nil {
					return "", err
				}
				if rev := c.reverse(subject); rev != subject {
					if err := c.act.RestoreLink(rev); err != nil {
						return "", err
					}
				}
				return "restored " + subject, nil
			}
		case ActionMigrate:
			if len(affected) == 0 {
				cd.detail = "no affected tenants"
				break
			}
			movable := make([]*core.Tenant, 0, len(affected))
			for _, t := range affected {
				if _, err := c.mgr.PlanAdmission(t.ID, cloneTargets(t.Targets), linkIDs(avoid)); err == nil {
					movable = append(movable, t)
				}
			}
			if len(movable) == 0 {
				cd.detail = "no alternative placement avoids the suspect"
				break
			}
			frac := float64(len(movable)) / float64(len(affected))
			cd.score = base + 4 + 5*frac
			cd.exec = func() (string, error) {
				moved := 0
				var firstErr error
				for _, t := range movable {
					err := c.act.MigrateTenant(string(t.ID), cloneTargets(t.Targets), avoid)
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						continue
					}
					moved++
				}
				return fmt.Sprintf("re-placed %d/%d tenant(s) off %s", moved, len(movable), subject), firstErr
			}
		case ActionEvict:
			if len(affected) == 0 {
				cd.detail = "no affected tenants"
				break
			}
			cd.score = base + 1
			cd.exec = func() (string, error) {
				evicted := 0
				var firstErr error
				for _, t := range affected {
					if err := c.act.EvictTenant(string(t.ID)); err != nil {
						if firstErr == nil {
							firstErr = err
						}
						continue
					}
					evicted++
				}
				return fmt.Sprintf("evicted %d tenant(s)", evicted), firstErr
			}
		case ActionRebalance:
			if c.fleet == nil {
				cd.detail = "no fleet scope"
				break
			}
			if len(affected) == 0 {
				cd.detail = "no affected tenants"
				break
			}
			cd.score = base + 3
			cd.exec = func() (string, error) {
				moved, err := c.fleet.RebalanceHost()
				return fmt.Sprintf("fleet rebalanced %d tenant(s)", moved), err
			}
		case ActionQuarantine:
			if c.fleet == nil {
				cd.detail = "no fleet scope"
				break
			}
			if in.executed < 2 {
				cd.detail = "quarantine only after escalation"
				break
			}
			cd.score = base + 0.5
			cd.exec = func() (string, error) {
				err := c.fleet.QuarantineHost("remedy: incident " + subject)
				return "host quarantined", err
			}
		}
		out = append(out, cd)
	}
	return out
}

func (c *Controller) linkUnhealthy(subject string) bool {
	rev := c.reverse(subject)
	for _, id := range c.mgr.Fabric().UnhealthyLinks() {
		if string(id) == subject || string(id) == rev {
			return true
		}
	}
	return false
}

// affectedTenants returns admitted tenants whose placed pathways
// traverse the subject in either direction, sorted by ID.
func (c *Controller) affectedTenants(subject string) []*core.Tenant {
	rev := c.reverse(subject)
	var out []*core.Tenant
	for _, t := range c.mgr.Tenants() { // already ID-sorted
		if tenantTraverses(t, subject, rev) {
			out = append(out, t)
		}
	}
	return out
}

func tenantTraverses(t *core.Tenant, subject, rev string) bool {
	onPath := func(p topology.Path) bool {
		for _, l := range p.Links {
			if string(l.ID) == subject || string(l.ID) == rev {
				return true
			}
		}
		return false
	}
	for _, a := range t.Assignments {
		if len(a.Splits) > 0 {
			for _, s := range a.Splits {
				if onPath(s.Path) {
					return true
				}
			}
			continue
		}
		if onPath(a.Path) {
			return true
		}
	}
	return false
}

func cloneTargets(ts []intent.Target) []intent.Target {
	out := make([]intent.Target, len(ts))
	copy(out, ts)
	return out
}

func linkIDs(ss []string) []topology.LinkID {
	out := make([]topology.LinkID, len(ss))
	for i, s := range ss {
		out[i] = topology.LinkID(s)
	}
	return out
}

// MTTRs returns the resolved incidents' MTTRs in resolution order —
// the benchjson trajectory's raw series.
func (c *Controller) MTTRs() []simtime.Duration {
	var out []simtime.Duration
	for _, in := range c.archive {
		if d, ok := in.MTTR(); ok {
			out = append(out, d)
		}
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of a duration
// series; 0 when empty. Sorting copies the input.
func Percentile(ds []simtime.Duration, p float64) simtime.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := make([]simtime.Duration, len(ds))
	copy(s, ds)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s)-1) * p / 100)
	return s[idx]
}
