package remedy

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

func newManager(t testing.TB) *core.Manager {
	t.Helper()
	m, err := core.New(topology.TwoSocketServer(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	return m
}

// warmup runs the engine past anomaly calibration so detection is armed.
func warmup(m *core.Manager) {
	acfg := core.DefaultOptions().Anomaly
	m.Engine().RunFor(simtime.Duration(acfg.CalibrationRounds+5) * acfg.Period)
}

func newController(t testing.TB, m *core.Manager, pol Policy) *Controller {
	t.Helper()
	c, err := New(m, ManagerActuator{Mgr: m}, Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []Policy{
		{},
		{Rules: []Rule{{Class: "bogus", Actions: []ActionKind{ActionRollback}}},
			CooldownUs: 0, HysteresisSteps: 1, MaxActionsPerIncident: 1},
		{Rules: []Rule{{Class: ClassAny}},
			CooldownUs: 0, HysteresisSteps: 1, MaxActionsPerIncident: 1},
		{Rules: []Rule{{Class: ClassAny, Actions: []ActionKind{"explode"}}},
			CooldownUs: 0, HysteresisSteps: 1, MaxActionsPerIncident: 1},
		{Rules: []Rule{{Class: ClassAny, Actions: []ActionKind{ActionRollback}}},
			CooldownUs: -1, HysteresisSteps: 1, MaxActionsPerIncident: 1},
		{Rules: []Rule{{Class: ClassAny, Actions: []ActionKind{ActionRollback}}},
			CooldownUs: 0, HysteresisSteps: 0, MaxActionsPerIncident: 1},
		{Rules: []Rule{{Class: ClassAny, Actions: []ActionKind{ActionRollback}}},
			CooldownUs: 0, HysteresisSteps: 1, MaxActionsPerIncident: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	doc := `{"rules":[{"class":"link-fail","actions":["rollback"]}],
		"cooldown_us":50,"hysteresis_steps":3,"max_actions_per_incident":2}`
	p, err := ParsePolicy([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.CooldownUs != 50 || p.HysteresisSteps != 3 || len(p.Rules) != 1 {
		t.Fatalf("parsed %+v", p)
	}
	if _, err := ParsePolicy([]byte(`{"rules":[]}`)); err == nil {
		t.Fatal("empty rule table accepted")
	}
	if _, err := ParsePolicy([]byte(`{nope`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRuleFallback(t *testing.T) {
	p := DefaultPolicy()
	if r := p.rule(ClassLinkFail); r == nil || r.Class != ClassLinkFail {
		t.Fatalf("exact match failed: %+v", r)
	}
	if r := p.rule("something-new"); r == nil || r.Class != ClassAny {
		t.Fatalf("fallback failed: %+v", r)
	}
	noAny := Policy{Rules: []Rule{{Class: ClassLinkFail, Actions: []ActionKind{ActionRollback}}}}
	if r := noAny.rule("something-new"); r != nil {
		t.Fatalf("matched without fallback: %+v", r)
	}
}

// TestClosedLoopRollback is the end-to-end tentpole check on one host:
// a silent degradation on the covered UPI link must be detected,
// localized, rolled back and hysteresis-resolved, with MTTR measured
// from the injection timestamp.
func TestClosedLoopRollback(t *testing.T) {
	m := newManager(t)
	c := newController(t, m, DefaultPolicy())
	warmup(m)

	if err := m.Fabric().DegradeLink("cpu0->cpu1", 0, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	period := core.DefaultOptions().Anomaly.Period
	for i := 0; i < 200 && c.Degraded() || i < 1; i++ {
		m.Engine().RunFor(period)
		c.Step()
		if s := c.Stats(); s.Resolved > 0 && !c.Degraded() {
			break
		}
	}

	s := c.Stats()
	if s.Incidents != 1 {
		t.Fatalf("incidents = %d, want 1 (%+v)", s.Incidents, s)
	}
	if s.Resolved != 1 || c.Degraded() {
		t.Fatalf("incident not resolved: %+v", s)
	}
	if s.Executed == 0 {
		t.Fatalf("no action executed: %+v", s)
	}
	ins := c.Incidents()
	if len(ins) != 1 {
		t.Fatalf("incident list %+v", ins)
	}
	in := ins[0]
	if !in.FaultKnown || !in.Detected || !in.Resolved {
		t.Fatalf("incident lifecycle incomplete: %+v", in)
	}
	if in.Class != ClassLinkDegrade {
		t.Fatalf("class %q, want link-degrade", in.Class)
	}
	if !in.Covered {
		t.Fatal("UPI link should be heartbeat-covered")
	}
	// Stage ordering: fault <= detect <= localize <= plan <= act <= resolved.
	if in.DetectAt < in.FaultAt || in.LocalizeAt < in.DetectAt ||
		in.PlanAt < in.LocalizeAt || in.ActAt < in.PlanAt || in.ResolvedAt < in.ActAt {
		t.Fatalf("stage timestamps out of order: %+v", in)
	}
	mttr, ok := in.MTTR()
	if !ok || mttr <= 0 {
		t.Fatalf("MTTR = %v ok=%v", mttr, ok)
	}
	if got := in.ResolvedAt.Sub(in.FaultAt); got != mttr {
		t.Fatalf("MTTR %v != resolved-fault %v (fault-known basis)", mttr, got)
	}
	if ds := c.MTTRs(); len(ds) != 1 || ds[0] != mttr {
		t.Fatalf("MTTRs() = %v, want [%v]", ds, mttr)
	}
	if len(m.Fabric().UnhealthyLinks()) != 0 {
		t.Fatal("link not actually restored")
	}
	var rolled bool
	for _, a := range in.Actions {
		if a.Action == ActionRollback && a.Err == "" {
			rolled = true
		}
	}
	if !rolled {
		t.Fatalf("no successful rollback in %+v", in.Actions)
	}
}

// noopActuator pretends to act but changes nothing, so incidents stay
// open and the anti-flap guards are observable.
type noopActuator struct{ calls int }

func (a *noopActuator) RestoreLink(string) error { a.calls++; return nil }
func (a *noopActuator) MigrateTenant(string, []intent.Target, []string) error {
	a.calls++
	return nil
}
func (a *noopActuator) EvictTenant(string) error { a.calls++; return nil }

// detectIncident warms up, injects a degrade and waits for anomaly
// detection so the controller has a localized incident to plan for.
func detectIncident(t *testing.T, m *core.Manager) {
	t.Helper()
	warmup(m)
	if err := m.Fabric().DegradeLink("cpu0->cpu1", 0, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	period := core.DefaultOptions().Anomaly.Period
	for i := 0; i < 50 && m.Anomaly().DetectionCount() == 0; i++ {
		m.Engine().RunFor(period)
	}
	if m.Anomaly().DetectionCount() == 0 {
		t.Fatal("degradation never detected")
	}
}

func TestCooldownSuppressesRepeatActions(t *testing.T) {
	m := newManager(t)
	pol := DefaultPolicy()
	pol.CooldownUs = 10_000 // 10ms: far longer than the test horizon
	act := &noopActuator{}
	c, err := New(m, act, Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	detectIncident(t, m)

	for i := 0; i < 5; i++ {
		m.Engine().RunFor(10 * simtime.Microsecond)
		c.Step()
	}
	s := c.Stats()
	if s.Executed != 1 {
		t.Fatalf("executed %d actions under cooldown, want exactly 1 (%+v)", s.Executed, s)
	}
	if s.Suppressed == 0 {
		t.Fatalf("cooldown never suppressed: %+v", s)
	}
}

func TestEscalationCap(t *testing.T) {
	m := newManager(t)
	pol := DefaultPolicy()
	pol.CooldownUs = 0
	pol.MaxActionsPerIncident = 2
	act := &noopActuator{}
	c, err := New(m, act, Options{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	detectIncident(t, m)

	for i := 0; i < 6; i++ {
		m.Engine().RunFor(10 * simtime.Microsecond)
		c.Step()
	}
	s := c.Stats()
	if s.Executed != 2 {
		t.Fatalf("executed %d, want cap of 2 (%+v)", s.Executed, s)
	}
	if s.Suppressed == 0 {
		t.Fatalf("cap never suppressed: %+v", s)
	}
}

// TestHysteresisEndpoint pins the MTTR endpoint semantics: the clock
// stops at the first step of the healthy run, not at the
// hysteresis-confirmation step.
func TestHysteresisEndpoint(t *testing.T) {
	m := newManager(t)
	pol := DefaultPolicy()
	pol.HysteresisSteps = 3
	c := newController(t, m, pol)
	warmup(m)

	in := &Incident{Subject: "phantom", Class: ClassLinkFail,
		Detected: true, DetectAt: m.Engine().Now()}
	c.openIncident(in)

	m.Engine().RunFor(10 * simtime.Microsecond)
	first := m.Engine().Now()
	c.Step() // healthy step 1
	if in.Resolved {
		t.Fatal("resolved before hysteresis")
	}
	m.Engine().RunFor(10 * simtime.Microsecond)
	c.Step() // healthy step 2
	if in.Resolved {
		t.Fatal("resolved before hysteresis")
	}
	m.Engine().RunFor(10 * simtime.Microsecond)
	c.Step() // healthy step 3: confirm
	if !in.Resolved {
		t.Fatal("not resolved after hysteresis steps")
	}
	if in.ResolvedAt != first {
		t.Fatalf("ResolvedAt = %v, want first healthy step %v", in.ResolvedAt, first)
	}
}

// TestMigratePlanAndExecute drives the dry-run planner against a live
// placement: a tenant whose pathway crosses an avoidable link must be
// re-placed off the suspect while the fault persists.
func TestMigratePlanAndExecute(t *testing.T) {
	m := newManager(t)
	c := newController(t, m, DefaultPolicy())
	if _, err := m.Admit("t1", []intent.Target{
		{Src: "cpu0", Dst: intent.AnyMemory, Rate: topology.GBps(5)},
	}); err != nil {
		t.Fatal(err)
	}
	tn := m.Tenant("t1")
	if tn == nil || len(tn.Assignments) != 1 || len(tn.Assignments[0].Path.Links) < 3 {
		t.Fatalf("unexpected placement %+v", tn)
	}
	// The middle hop (llc -> memctrl) is avoidable: other memory
	// controllers and the far socket provide alternative pathways.
	subject := c.canonical(string(tn.Assignments[0].Path.Links[1].ID))

	if got := c.affectedTenants(subject); len(got) != 1 || got[0].ID != "t1" {
		t.Fatalf("affectedTenants(%s) = %+v", subject, got)
	}

	in := &Incident{Subject: subject, Class: ClassLinkDegrade, Detected: true}
	cands := c.plan(in, c.pol.rule(ClassLinkDegrade))
	if len(cands) != 2 {
		t.Fatalf("candidates %+v", cands)
	}
	var migrate *candidate
	for i := range cands {
		if cands[i].action == ActionMigrate {
			migrate = &cands[i]
		}
	}
	if migrate == nil || migrate.exec == nil {
		t.Fatalf("migrate infeasible: %+v", cands)
	}
	detail, err := migrate.exec()
	if err != nil {
		t.Fatalf("migrate exec: %v (%s)", err, detail)
	}
	if !strings.Contains(detail, "re-placed 1/1") {
		t.Fatalf("detail %q", detail)
	}
	moved := m.Tenant("t1")
	if moved == nil {
		t.Fatal("tenant lost by migration")
	}
	if tenantTraverses(moved, subject, c.reverse(subject)) {
		t.Fatalf("migrated placement still traverses %s: %+v", subject, moved.Assignments)
	}
}

// TestFleetClosedLoop runs per-host controllers over a session-backed
// fleet: the faulted host heals through its own journaled session and
// the healthy host stays untouched.
func TestFleetClosedLoop(t *testing.T) {
	flt := fleet.New()
	sessions := map[string]*snap.Session{}
	for _, name := range []string{"a", "b"} {
		sess, err := snap.NewSession(snap.Config{Preset: "two-socket", Options: core.DefaultOptions()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := flt.AddSession(name, sess); err != nil {
			t.Fatal(err)
		}
		sessions[name] = sess
	}
	fc, err := NewFleet(flt, nil, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	acfg := core.DefaultOptions().Anomaly
	flt.RunFor(simtime.Duration(acfg.CalibrationRounds+5) * acfg.Period)
	if err := sessions["a"].DegradeLink("cpu0->cpu1", 0, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		flt.RunFor(acfg.Period)
		fc.StepAll()
		if s := fc.Stats(); s.Resolved > 0 && !fc.Degraded() {
			break
		}
	}
	s := fc.Stats()
	if s.Resolved != 1 || fc.Degraded() {
		t.Fatalf("fleet incident not resolved: %+v", s)
	}
	if sb := fc.Controller("b").Stats(); sb.Incidents != 0 {
		t.Fatalf("healthy host opened incidents: %+v", sb)
	}
	// The remediation is journaled on the faulted host: the restore
	// command must appear in its replayable command stream.
	var restored bool
	for _, e := range sessions["a"].Journal().Entries {
		if e.Kind == snap.KindRestoreLink {
			restored = true
		}
	}
	if !restored {
		t.Fatal("remediation did not journal a restore-link entry")
	}
	if len(fc.MTTRs()) != 1 {
		t.Fatalf("fleet MTTRs %v", fc.MTTRs())
	}
}

func TestPercentile(t *testing.T) {
	ds := []simtime.Duration{40, 10, 30, 20}
	if p := Percentile(ds, 50); p != 20 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(ds, 100); p != 40 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(nil, 99); p != 0 {
		t.Fatalf("empty p99 = %v", p)
	}
	if ds[0] != 40 {
		t.Fatal("Percentile mutated its input")
	}
}
