// Package remedy closes the paper's loop: §3.1 monitoring detects and
// localizes an anomaly, §3.2 management owns the verbs that could heal
// it — this package is the controller that connects the two without a
// human in the middle. It subscribes to anomaly verdicts on the obs
// event bus, runs a rule-table policy mapping incident class to
// candidate actions, scores the candidates with a dry-run planner
// against current fabric/arbiter state, and executes the winner
// through the journaled snap.Session path, so every remediation is
// replayable and shows up as a correlated span. MTTR — fault-injection
// timestamp to invariant-restored timestamp, in virtual time — is the
// subsystem's first-class metric.
package remedy

import (
	"encoding/json"
	"fmt"
)

// ActionKind names one remediation verb.
type ActionKind string

// The remediation vocabulary. Rollback and the tenant-scoped verbs
// act on one host; rebalance and quarantine need a fleet hook.
const (
	// ActionRollback restores the suspect link (both directions) —
	// the direct repair for an injected degradation or failure.
	ActionRollback ActionKind = "rollback"
	// ActionMigrate re-places tenants whose pathways traverse the
	// suspect, avoiding it — mitigation while the fault persists.
	ActionMigrate ActionKind = "migrate"
	// ActionEvict releases affected tenants — the last resort when no
	// alternative placement exists.
	ActionEvict ActionKind = "evict"
	// ActionRebalance asks the fleet to move affected tenants to a
	// healthy host (fleet scope only).
	ActionRebalance ActionKind = "rebalance"
	// ActionQuarantine fences the host out of the epoch loop (fleet
	// scope only).
	ActionQuarantine ActionKind = "quarantine"
)

// Incident classes the rule table keys on.
const (
	ClassLinkFail    = "link-fail"
	ClassLinkDegrade = "link-degrade"
	// ClassAny matches every class; used as the rule-table fallback.
	ClassAny = "*"
)

// Rule maps one incident class to its candidate actions, in
// preference order (earlier actions get a higher base score).
type Rule struct {
	Class   string       `json:"class"`
	Actions []ActionKind `json:"actions"`
}

// Policy is the controller's rule table plus its anti-flap knobs.
// Policies are out-of-band configuration: the controller does not run
// during replay — only its journaled commands do — so editing the
// policy never threatens journal determinism, but two runs that should
// produce identical journals must use identical policies.
type Policy struct {
	Rules []Rule `json:"rules"`
	// CooldownUs is the minimum virtual time between executed actions
	// on the same subject — including across incidents, so a
	// fault–heal–fault oscillation cannot make the controller flap.
	CooldownUs int64 `json:"cooldown_us"`
	// HysteresisSteps is how many consecutive healthy controller steps
	// an incident must observe before it is declared resolved (one
	// good probe is not recovery).
	HysteresisSteps int `json:"hysteresis_steps"`
	// MaxActionsPerIncident bounds escalation.
	MaxActionsPerIncident int `json:"max_actions_per_incident"`
}

// DefaultPolicy returns the rule table used by the chaos adversary
// and the daemon: hard failures roll back first (the link is dead,
// re-pathing alone cannot restore coverage), silent degradations
// migrate affected tenants off the suspect pathway first and then
// roll the link back.
func DefaultPolicy() Policy {
	return Policy{
		Rules: []Rule{
			{Class: ClassLinkFail, Actions: []ActionKind{ActionRollback, ActionMigrate}},
			{Class: ClassLinkDegrade, Actions: []ActionKind{ActionMigrate, ActionRollback}},
			{Class: ClassAny, Actions: []ActionKind{ActionRollback}},
		},
		CooldownUs:            200,
		HysteresisSteps:       2,
		MaxActionsPerIncident: 4,
	}
}

// Validate checks the policy's structural invariants.
func (p Policy) Validate() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("remedy: policy needs at least one rule")
	}
	for i, r := range p.Rules {
		switch r.Class {
		case ClassLinkFail, ClassLinkDegrade, ClassAny:
		default:
			return fmt.Errorf("remedy: rule %d has unknown class %q", i, r.Class)
		}
		if len(r.Actions) == 0 {
			return fmt.Errorf("remedy: rule %d (%s) has no actions", i, r.Class)
		}
		for _, a := range r.Actions {
			switch a {
			case ActionRollback, ActionMigrate, ActionEvict, ActionRebalance, ActionQuarantine:
			default:
				return fmt.Errorf("remedy: rule %d has unknown action %q", i, a)
			}
		}
	}
	if p.CooldownUs < 0 {
		return fmt.Errorf("remedy: negative cooldown")
	}
	if p.HysteresisSteps < 1 {
		return fmt.Errorf("remedy: hysteresis must be at least 1 step")
	}
	if p.MaxActionsPerIncident < 1 {
		return fmt.Errorf("remedy: max actions per incident must be at least 1")
	}
	return nil
}

// rule returns the first rule matching class, falling back to the
// ClassAny rule; nil when nothing matches.
func (p Policy) rule(class string) *Rule {
	for i := range p.Rules {
		if p.Rules[i].Class == class {
			return &p.Rules[i]
		}
	}
	for i := range p.Rules {
		if p.Rules[i].Class == ClassAny {
			return &p.Rules[i]
		}
	}
	return nil
}

// ParsePolicy decodes and validates a policy document (the HTTP
// policy-CRUD payload).
func ParsePolicy(data []byte) (Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return Policy{}, fmt.Errorf("remedy: decode policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}
