// Package store gives journals and snapshots a durable home. It is
// the persistence layer under snap.Session: every journaled command is
// shadowed into an append-only segmented write-ahead log with
// per-record checksums, and checkpoints are content-addressed
// incremental snapshots — payloads split into SHA-256-keyed chunks so
// consecutive checkpoints (and, in fleet mode, checkpoints of many
// hosts sharing one pool) store each distinct blob once.
//
// Layout of a store directory:
//
//	config.json              reconstruction config (snap.Config)
//	journal/seg-<seq>.wal    WAL segments (see wal.go for the format)
//	snapshots/manifest-*.json   checkpoint manifests (chunk references)
//	chunks/<hh>/<sha256>     content-addressed blobs
//
// Recovery order: newest loadable snapshot (corrupt manifests or
// chunks fall back to older generations, then to nothing), then replay
// of WAL records past the snapshot's wal_seq. The WAL tolerates a
// truncated or corrupted tail by cutting it at the last intact record,
// so a SIGKILL — or a partial write — costs at most the commands after
// the last completed append, never the store.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
	"repro/internal/snap"
)

// SyncPolicy selects the durability level of WAL appends.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: records survive machine
	// crashes, at a per-command fsync cost.
	SyncAlways SyncPolicy = "always"
	// SyncOS hands flushing to the page cache: records survive process
	// kills (SIGKILL included — the write(2) completed) but not power
	// loss. The fleet default.
	SyncOS SyncPolicy = "os"
)

// Options configure a store.
type Options struct {
	// Sync is the WAL durability policy; default SyncAlways.
	Sync SyncPolicy
	// SegmentBytes rotates WAL segments at this size; default 4 MB.
	SegmentBytes int64
	// JournalChunkEntries sets the journal-chunking granularity for
	// snapshots; default 256 entries per chunk.
	JournalChunkEntries int
}

func (o Options) withDefaults() Options {
	if o.Sync == "" {
		o.Sync = SyncAlways
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.JournalChunkEntries <= 0 {
		o.JournalChunkEntries = defaultJournalChunkEntries
	}
	return o
}

// ParseSyncPolicy validates a -store-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncOS:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("store: unknown sync policy %q (want %q or %q)", s, SyncAlways, SyncOS)
}

// Store is the durable journal/snapshot backend for one host. It
// implements snap.EntrySink; attach it with Bootstrap (fresh store) or
// let Recover rebuild the session and attach itself.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	wal      *wal
	pool     *chunkPool
	snapDir  string
	lastSnap manifest // zero Seq = none

	// Metrics, bound to the session's registry at attach time; nil
	// until then.
	mAppends       *obs.Counter
	mAppendErrors  *obs.Counter
	mSnapshots     *obs.Counter
	mChunksWritten *obs.Counter
	mChunksReused  *obs.Counter
}

// Open opens (or initializes) a single-host store directory with a
// private chunk pool.
func Open(dir string, opts Options) (*Store, error) {
	return open(dir, opts, nil)
}

func open(dir string, opts Options, pool *chunkPool) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts, snapDir: filepath.Join(dir, "snapshots")}
	if err := os.MkdirAll(s.snapDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create snapshots dir: %w", err)
	}
	var err error
	if pool != nil {
		s.pool = pool
	} else if s.pool, err = openChunkPool(filepath.Join(dir, "chunks"), false, opts.Sync == SyncAlways); err != nil {
		return nil, err
	}
	if s.wal, err = openWAL(filepath.Join(dir, "journal"), opts.Sync == SyncAlways, opts.SegmentBytes); err != nil {
		return nil, err
	}
	if seqs, err := listManifests(s.snapDir); err == nil && len(seqs) > 0 {
		if m, err := readManifest(s.snapDir, seqs[len(seqs)-1]); err == nil {
			s.lastSnap = m
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// HasState reports whether the store holds a previous run — a config
// plus any journal records or snapshot. Daemons use it to decide
// between Bootstrap (first boot) and Recover (restart).
func (s *Store) HasState() bool {
	if _, err := os.Stat(filepath.Join(s.dir, "config.json")); err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.lastSeq() > 0 || s.lastSnap.Seq > 0
}

// Bootstrap initializes a fresh store for a live session: persists the
// config, seeds the WAL with the session's existing journal (boot-time
// commands issued before the store attached, e.g. a synth fleet's
// workload admissions), and attaches itself as the session's sink.
func (s *Store) Bootstrap(sess *snap.Session) error {
	s.mu.Lock()
	if s.wal.lastSeq() > 0 || s.lastSnap.Seq > 0 {
		s.mu.Unlock()
		return fmt.Errorf("store: %s already holds state; recover instead of bootstrapping", s.dir)
	}
	if err := s.writeConfig(sess.Config()); err != nil {
		s.mu.Unlock()
		return err
	}
	for _, e := range sess.Journal().Entries {
		if err := s.appendLocked(e); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Unlock()
	s.bindMetrics(sess)
	sess.SetSink(s)
	return nil
}

func (s *Store) writeConfig(cfg snap.Config) error {
	doc, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal config: %w", err)
	}
	path := filepath.Join(s.dir, "config.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return fmt.Errorf("store: write config: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish config: %w", err)
	}
	return nil
}

func (s *Store) readConfig() (snap.Config, error) {
	doc, err := os.ReadFile(filepath.Join(s.dir, "config.json"))
	if err != nil {
		return snap.Config{}, fmt.Errorf("store: read config: %w", err)
	}
	var cfg snap.Config
	if err := json.Unmarshal(doc, &cfg); err != nil {
		return snap.Config{}, fmt.Errorf("store: decode config: %w", err)
	}
	return cfg, nil
}

// bindMetrics registers the store's counters on the session manager's
// registry, so store activity rolls up with the host's other metrics.
func (s *Store) bindMetrics(sess *snap.Session) {
	reg := sess.Manager().Obs().Registry
	s.mAppends = reg.Counter("ihnet_store_appends_total",
		"Journal records appended to the durable WAL.")
	s.mAppendErrors = reg.Counter("ihnet_store_append_errors_total",
		"Durable WAL appends that failed.")
	s.mSnapshots = reg.Counter("ihnet_store_snapshots_total",
		"Checkpoints persisted to the durable store.")
	s.mChunksWritten = reg.Counter("ihnet_store_chunks_written_total",
		"New content-addressed chunks written by checkpoints.")
	s.mChunksReused = reg.Counter("ihnet_store_chunks_reused_total",
		"Checkpoint chunks deduplicated against existing content.")
}

// AppendEntry implements snap.EntrySink: one WAL record per journaled
// command.
func (s *Store) AppendEntry(e snap.Entry) error {
	s.mu.Lock()
	err := s.appendLocked(e)
	s.mu.Unlock()
	if err != nil {
		if s.mAppendErrors != nil {
			s.mAppendErrors.Inc()
		}
		return err
	}
	if s.mAppends != nil {
		s.mAppends.Inc()
	}
	return nil
}

func (s *Store) appendLocked(e snap.Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: marshal entry: %w", err)
	}
	return s.wal.append(payload)
}

// SnapshotInfo summarizes one persisted checkpoint.
type SnapshotInfo struct {
	Seq           uint64 `json:"seq"`
	WalSeq        uint64 `json:"wal_seq"`
	StateHash     string `json:"state_hash"`
	ChunksWritten int    `json:"chunks_written"`
	ChunksReused  int    `json:"chunks_reused"`
	BytesWritten  int64  `json:"bytes_written"`
	BytesReused   int64  `json:"bytes_reused"`
}

// SaveSnapshot persists a checkpoint of the payload: config, state and
// journal land in the chunk pool (deduplicated against everything
// already there), a manifest records the references and the WAL
// position it covers, and WAL segments older than the checkpoint are
// pruned. Call it under the same serialization that orders commands —
// the manifest's wal_seq asserts that every WAL record so far is
// folded into the payload's journal.
func (s *Store) SaveSnapshot(p snap.Payload) (SnapshotInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := SnapshotInfo{Seq: s.lastSnap.Seq + 1, WalSeq: s.wal.lastSeq(), StateHash: p.StateHash}
	m := manifest{
		Seq:            info.Seq,
		WalSeq:         info.WalSeq,
		StateHash:      p.StateHash,
		VirtualTimeNs:  p.VirtualTimeNs,
		JournalEntries: p.Journal.Len(),
	}
	put := func(data []byte) (chunkRef, error) {
		ref, reused, err := s.pool.put(data)
		if err != nil {
			return ref, err
		}
		if reused {
			info.ChunksReused++
			info.BytesReused += ref.Size
		} else {
			info.ChunksWritten++
			info.BytesWritten += ref.Size
		}
		return ref, nil
	}

	cfgData, err := json.Marshal(p.Config)
	if err != nil {
		return info, fmt.Errorf("store: marshal config: %w", err)
	}
	if m.Config, err = put(cfgData); err != nil {
		return info, err
	}
	stateData, err := json.Marshal(statePart{
		VirtualTimeNs:   p.VirtualTimeNs,
		EventsProcessed: p.EventsProcessed,
		StateHash:       p.StateHash,
		State:           p.State,
	})
	if err != nil {
		return info, fmt.Errorf("store: marshal state: %w", err)
	}
	if m.State, err = put(stateData); err != nil {
		return info, err
	}
	chunkN := s.opts.JournalChunkEntries
	for at := 0; at < p.Journal.Len(); at += chunkN {
		end := min(at+chunkN, p.Journal.Len())
		data, err := json.Marshal(p.Journal.Entries[at:end])
		if err != nil {
			return info, fmt.Errorf("store: marshal journal chunk: %w", err)
		}
		ref, err := put(data)
		if err != nil {
			return info, err
		}
		m.Journal = append(m.Journal, journalChunk{chunkRef: ref, Entries: end - at})
	}

	if err := writeManifest(s.snapDir, m, s.opts.Sync == SyncAlways); err != nil {
		return info, err
	}
	s.lastSnap = m
	if s.mSnapshots != nil {
		s.mSnapshots.Inc()
		s.mChunksWritten.Add(uint64(info.ChunksWritten))
		s.mChunksReused.Add(uint64(info.ChunksReused))
	}

	// Retention: drop manifest generations beyond the keep window and
	// collect chunks nothing references anymore, then rotate the open
	// segment and prune WAL records every *retained* generation covers.
	// The bound is the oldest retained manifest, not the newest: if the
	// newest checkpoint later turns out corrupt, recovery falls back a
	// generation and still needs the WAL from that generation forward.
	oldestCovered := s.pruneManifests(m)
	if err := s.wal.rotate(); err != nil {
		return info, err
	}
	if _, err := s.wal.pruneThrough(oldestCovered); err != nil {
		return info, err
	}
	return info, nil
}

// pruneManifests drops snapshot generations beyond manifestKeep,
// garbage-collects chunks only they referenced, and returns the
// oldest retained generation's WAL coverage (the safe WAL prune
// bound). Best-effort: retention failures never fail the checkpoint
// that triggered them — latest is the just-written manifest, the
// conservative fallback answer.
func (s *Store) pruneManifests(latest manifest) (oldestCoveredWalSeq uint64) {
	seqs, err := listManifests(s.snapDir)
	if err != nil || len(seqs) == 0 {
		return 0
	}
	if len(seqs) > manifestKeep {
		for _, seq := range seqs[:len(seqs)-manifestKeep] {
			os.Remove(filepath.Join(s.snapDir, manifestName(seq)))
		}
		seqs = seqs[len(seqs)-manifestKeep:]
	}
	keep := map[string]bool{}
	oldestCoveredWalSeq = latest.WalSeq
	for _, seq := range seqs {
		m, err := readManifest(s.snapDir, seq)
		if err != nil {
			continue
		}
		for _, ref := range m.chunkRefs() {
			keep[ref] = true
		}
		if m.WalSeq < oldestCoveredWalSeq {
			oldestCoveredWalSeq = m.WalSeq
		}
	}
	s.pool.gc(keep)
	return oldestCoveredWalSeq
}

// RecoveryReport describes what a Recover rebuilt and what it had to
// discard along the way.
type RecoveryReport struct {
	// SnapshotSeq is the checkpoint generation restored from; 0 when
	// recovery replayed the WAL from scratch.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotsSkipped counts newer checkpoint generations that failed
	// verification (corrupt manifest or chunk) and were passed over.
	SnapshotsSkipped int `json:"snapshots_skipped,omitempty"`
	// WalRecords is the number of intact records found in the WAL.
	WalRecords uint64 `json:"wal_records"`
	// Replayed is how many of those were applied on top of the
	// snapshot.
	Replayed int `json:"replayed"`
	// TruncatedBytes were cut from the WAL tail (partial or corrupt
	// records); OrphanSegments are later segment files dropped with
	// them.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	OrphanSegments int   `json:"orphan_segments,omitempty"`
	// StateHash and VirtualTimeNs identify the recovered state.
	StateHash     string `json:"state_hash"`
	VirtualTimeNs int64  `json:"virtual_time_ns"`
}

// Recover rebuilds a live session from the store: restore the newest
// loadable checkpoint (falling back generation by generation, then to
// a fresh host built from config.json), replay WAL records past it,
// and attach the store as the session's sink so new commands keep
// landing in the log.
func (s *Store) Recover() (*snap.Session, RecoveryReport, error) {
	s.mu.Lock()
	rep := RecoveryReport{
		WalRecords:     s.wal.lastSeq(),
		TruncatedBytes: s.wal.truncatedBytes,
		OrphanSegments: s.wal.orphanSegments,
	}

	var sess *snap.Session
	var fromSeq uint64
	seqs, err := listManifests(s.snapDir)
	if err != nil {
		s.mu.Unlock()
		return nil, rep, err
	}
	for i := len(seqs) - 1; i >= 0 && sess == nil; i-- {
		m, err := readManifest(s.snapDir, seqs[i])
		if err != nil {
			rep.SnapshotsSkipped++
			continue
		}
		p, err := m.loadPayload(s.pool)
		if err != nil {
			rep.SnapshotsSkipped++
			continue
		}
		restored, err := snap.RestorePayload(p)
		if err != nil {
			rep.SnapshotsSkipped++
			continue
		}
		sess, fromSeq = restored, m.WalSeq
		rep.SnapshotSeq = m.Seq
		s.lastSnap = m
		if err := s.wal.fastForward(m.WalSeq); err != nil {
			s.mu.Unlock()
			return nil, rep, err
		}
	}
	if sess == nil {
		// WAL-only replay needs the log from record 1. If pruning
		// already discarded the prefix (it was covered by snapshots that
		// all failed verification), a partial replay would silently
		// rebuild a truncated world — refuse instead.
		if first := s.wal.firstSeq(); first > 1 {
			s.mu.Unlock()
			return nil, rep, fmt.Errorf(
				"store: no loadable checkpoint and the journal starts at record %d (prefix pruned); cannot recover a complete state", first)
		}
		cfg, err := s.readConfig()
		if err != nil {
			s.mu.Unlock()
			return nil, rep, err
		}
		if sess, err = snap.NewSession(cfg); err != nil {
			s.mu.Unlock()
			return nil, rep, err
		}
	}

	err = s.wal.scan(fromSeq, func(seq uint64, payload []byte) error {
		var e snap.Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("store: decode WAL record %d: %w", seq, err)
		}
		if err := sess.ReplayEntry(e); err != nil {
			return fmt.Errorf("store: replay WAL record %d: %w", seq, err)
		}
		rep.Replayed++
		return nil
	})
	s.mu.Unlock()
	if err != nil {
		return nil, rep, err
	}
	rep.StateHash = snap.StateHash(sess.Manager())
	rep.VirtualTimeNs = int64(sess.Now())
	s.bindMetrics(sess)
	sess.SetSink(s)
	return sess, rep, nil
}

// Resume attaches the store as sink to an already-reconstructed
// session without touching the log — the POST /restore path, after
// Reset rewrote the WAL from the restored journal.
func (s *Store) Resume(sess *snap.Session) {
	s.bindMetrics(sess)
	sess.SetSink(s)
}

// Reset discards the store's journal and snapshots and re-seeds it
// from a new config and journal — the durable counterpart of
// restoring a session from an externally supplied snapshot.
func (s *Store) Reset(cfg snap.Config, entries []snap.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeConfig(cfg); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	seqs, err := listManifests(s.snapDir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		os.Remove(filepath.Join(s.snapDir, manifestName(seq)))
	}
	s.lastSnap = manifest{}
	s.pool.gc(map[string]bool{})
	for _, e := range entries {
		if err := s.appendLocked(e); err != nil {
			return err
		}
	}
	return nil
}

// Stats is the store's health summary, shaped for /healthz.
type Stats struct {
	Dir             string     `json:"dir"`
	Sync            SyncPolicy `json:"sync"`
	WalRecords      uint64     `json:"wal_records"`
	WalSegments     int        `json:"wal_segments"`
	SnapshotSeq     uint64     `json:"snapshot_seq"`
	SnapshotWalSeq  uint64     `json:"snapshot_wal_seq"`
	SnapshotEntries int        `json:"snapshot_entries"`
}

// Stats reports current store occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:             s.dir,
		Sync:            s.opts.Sync,
		WalRecords:      s.wal.lastSeq(),
		WalSegments:     len(s.wal.segments),
		SnapshotSeq:     s.lastSnap.Seq,
		SnapshotWalSeq:  s.lastSnap.WalSeq,
		SnapshotEntries: s.lastSnap.JournalEntries,
	}
}

// Close releases the WAL file handle. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.close()
}
