package store

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

func testConfig() snap.Config {
	return snap.Config{Preset: "minimal", Options: core.DefaultOptions()}
}

func admit(t *testing.T, sess *snap.Session, tenant string) {
	t.Helper()
	_, err := sess.Admit(tenant, []intent.Target{{
		Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(5),
	}})
	if err != nil {
		t.Fatalf("Admit %s: %v", tenant, err)
	}
}

// newStoredSession boots a fresh session bootstrapped onto a fresh
// store in dir.
func newStoredSession(t *testing.T, dir string, opts Options) (*snap.Session, *Store) {
	t.Helper()
	sess, err := snap.NewSession(testConfig())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Bootstrap(sess); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	return sess, st
}

// drive issues a representative command mix: admits, time advancement,
// faults, config drift, caps, an eviction.
func drive(t *testing.T, sess *snap.Session) {
	t.Helper()
	steps := []func() error{
		func() error { admit(t, sess, "t1"); return nil },
		func() error { return sess.Advance(500 * simtime.Microsecond) },
		func() error { admit(t, sess, "t2"); return nil },
		func() error { return sess.DegradeLink("pcieswitch0->nic0", 0.3, 2*simtime.Microsecond) },
		func() error { return sess.Advance(500 * simtime.Microsecond) },
		func() error { return sess.SetComponentConfig("socket0.llc", topology.ConfigDDIO, "off") },
		func() error { return sess.SetTenantCap("pcieswitch0->nic0", "t1", 1e9) },
		func() error { return sess.Evict("t2") },
		func() error { return sess.Advance(250 * simtime.Microsecond) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("drive step %d: %v", i, err)
		}
	}
}

// TestRecoverFromWALOnly drives a session, reopens the store with no
// snapshot ever taken, and expects recovery to replay the WAL into a
// byte-identical state.
func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS})
	drive(t, sess)
	wantHash := snap.StateHash(sess.Manager())
	wantLen := sess.Journal().Len()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := Open(dir, Options{Sync: SyncOS})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !st2.HasState() {
		t.Fatalf("store should report state after a driven run")
	}
	recovered, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.SnapshotSeq != 0 {
		t.Fatalf("recovered from snapshot %d, want WAL-only", rep.SnapshotSeq)
	}
	if got := snap.StateHash(recovered.Manager()); got != wantHash {
		t.Fatalf("recovered hash %s, want %s", got, wantHash)
	}
	if got := recovered.Journal().Len(); got != wantLen {
		t.Fatalf("recovered journal has %d entries, want %d", got, wantLen)
	}
	if rep.StateHash != wantHash {
		t.Fatalf("report hash %s, want %s", rep.StateHash, wantHash)
	}
	if _, err := snap.CheckDeterminism(recovered.Config(), recovered.Journal()); err != nil {
		t.Fatalf("CheckDeterminism on recovered journal: %v", err)
	}
}

// TestRecoverFromSnapshotPlusTail checkpoints mid-run, keeps driving,
// and expects recovery to restore the snapshot and replay only the WAL
// tail past it.
func TestRecoverFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
	drive(t, sess)
	info, err := st.SaveSnapshot(sess.BuildPayload())
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if info.Seq != 1 || info.ChunksWritten == 0 {
		t.Fatalf("unexpected snapshot info %+v", info)
	}
	// Tail past the checkpoint.
	if err := sess.Advance(300 * simtime.Microsecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	admit(t, sess, "t3")
	wantHash := snap.StateHash(sess.Manager())
	st.Close()

	st2, err := Open(dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recovered, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.SnapshotSeq != 1 {
		t.Fatalf("recovered from snapshot %d, want 1", rep.SnapshotSeq)
	}
	if rep.Replayed == 0 {
		t.Fatalf("expected WAL tail replay past the snapshot, got none")
	}
	if got := snap.StateHash(recovered.Manager()); got != wantHash {
		t.Fatalf("recovered hash %s, want %s", got, wantHash)
	}
	if _, err := snap.CheckDeterminism(recovered.Config(), recovered.Journal()); err != nil {
		t.Fatalf("CheckDeterminism on recovered journal: %v", err)
	}
}

// TestIncrementalSnapshotsReuseChunks takes two checkpoints and
// expects the second to reuse the config chunk and the journal's
// unchanged prefix chunks.
func TestIncrementalSnapshotsReuseChunks(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
	drive(t, sess)
	if _, err := st.SaveSnapshot(sess.BuildPayload()); err != nil {
		t.Fatalf("SaveSnapshot 1: %v", err)
	}
	if err := sess.Advance(300 * simtime.Microsecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	info, err := st.SaveSnapshot(sess.BuildPayload())
	if err != nil {
		t.Fatalf("SaveSnapshot 2: %v", err)
	}
	if info.ChunksReused == 0 {
		t.Fatalf("second checkpoint reused no chunks: %+v", info)
	}
}

// TestResetRewritesStore restores-from-scratch semantics: Reset wipes
// the log and reseeds it, and recovery then rebuilds the new world.
func TestResetRewritesStore(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS})
	drive(t, sess)
	if _, err := st.SaveSnapshot(sess.BuildPayload()); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	// A different world: fresh session, two commands.
	other, err := snap.NewSession(testConfig())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	admit(t, other, "solo")
	if err := other.Advance(100 * simtime.Microsecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	wantHash := snap.StateHash(other.Manager())

	if err := st.Reset(other.Config(), other.Journal().Entries); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	st.Resume(other)
	st.Close()

	st2, err := Open(dir, Options{Sync: SyncOS})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recovered, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.SnapshotSeq != 0 {
		t.Fatalf("reset store still recovered snapshot %d", rep.SnapshotSeq)
	}
	if got := snap.StateHash(recovered.Manager()); got != wantHash {
		t.Fatalf("recovered hash %s, want %s", got, wantHash)
	}
}

// TestFleetStoreSharesChunks snapshots two identically driven hosts
// through one fleet store and expects the second host's checkpoint to
// be fully deduplicated against the first's chunks.
func TestFleetStoreSharesChunks(t *testing.T) {
	dir := t.TempDir()
	fst, err := OpenFleet(dir, Options{Sync: SyncOS})
	if err != nil {
		t.Fatalf("OpenFleet: %v", err)
	}
	var infos []SnapshotInfo
	for _, name := range []string{"host-a", "host-b"} {
		sess, err := snap.NewSession(testConfig())
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		hs, err := fst.Host(name)
		if err != nil {
			t.Fatalf("Host(%s): %v", name, err)
		}
		if err := hs.Bootstrap(sess); err != nil {
			t.Fatalf("Bootstrap(%s): %v", name, err)
		}
		drive(t, sess)
		info, err := hs.SaveSnapshot(sess.BuildPayload())
		if err != nil {
			t.Fatalf("SaveSnapshot(%s): %v", name, err)
		}
		infos = append(infos, info)
	}
	if infos[0].ChunksWritten == 0 {
		t.Fatalf("first host wrote no chunks: %+v", infos[0])
	}
	if infos[1].ChunksWritten != 0 {
		t.Fatalf("second identical host wrote %d chunks, want full reuse (%+v)",
			infos[1].ChunksWritten, infos[1])
	}
	st := fst.Stats()
	if st.Hosts != 2 || st.SnapshottedHosts != 2 {
		t.Fatalf("unexpected fleet stats %+v", st)
	}
	if _, err := fst.Host("../escape"); err == nil {
		t.Fatalf("path-traversal host name was accepted")
	}
}

// TestBootstrapSeedsExistingJournal attaches a store to a session that
// already journaled commands (the synth-fleet boot pattern) and
// expects recovery to reproduce them.
func TestBootstrapSeedsExistingJournal(t *testing.T) {
	dir := t.TempDir()
	sess, err := snap.NewSession(testConfig())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	admit(t, sess, "early")
	st, err := Open(dir, Options{Sync: SyncOS})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Bootstrap(sess); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if err := sess.Advance(100 * simtime.Microsecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	wantHash := snap.StateHash(sess.Manager())
	st.Close()

	st2, err := Open(dir, Options{Sync: SyncOS})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recovered, _, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := snap.StateHash(recovered.Manager()); got != wantHash {
		t.Fatalf("recovered hash %s, want %s", got, wantHash)
	}
	// Bootstrapping the already-populated store again must refuse.
	if err := st2.Bootstrap(recovered); err == nil {
		t.Fatalf("Bootstrap on a non-empty store should fail")
	}
}

// TestSegmentRotationAndPrune forces tiny segments, checkpoints, and
// expects covered segments to be pruned while recovery still works.
func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS, SegmentBytes: 256})
	drive(t, sess)
	before := st.Stats()
	if before.WalSegments < 2 {
		t.Fatalf("expected rotation with 256-byte segments, got %d segment(s)", before.WalSegments)
	}
	if _, err := st.SaveSnapshot(sess.BuildPayload()); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	after := st.Stats()
	if after.WalSegments >= before.WalSegments {
		t.Fatalf("snapshot did not prune covered segments: %d -> %d", before.WalSegments, after.WalSegments)
	}
	if err := sess.Advance(100 * simtime.Microsecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	wantHash := snap.StateHash(sess.Manager())
	st.Close()

	st2, err := Open(dir, Options{Sync: SyncOS, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recovered, _, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := snap.StateHash(recovered.Manager()); got != wantHash {
		t.Fatalf("recovered hash %s, want %s", got, wantHash)
	}
}
