package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/snap"
)

// ManifestFormat identifies a store snapshot manifest on disk.
const ManifestFormat = "ihnet-store-manifest"

// ManifestVersion is the manifest schema version.
const ManifestVersion = 1

// manifestKeep is how many snapshot generations a store retains;
// older manifests are pruned after each save and their now-
// unreferenced chunks collected.
const manifestKeep = 3

// defaultJournalChunkEntries groups this many journal entries per
// chunk. The journal is append-only, so every full chunk is immutable:
// consecutive snapshots re-put identical prefixes and the pool
// deduplicates them — an incremental checkpoint costs one state chunk
// plus the journal's new tail.
const defaultJournalChunkEntries = 256

// manifest is the payload of one snapshot generation: where every
// piece of the snap.Payload lives in the chunk pool, plus the WAL
// position it covers. Recovery = reassemble + replay WAL records with
// sequence > WalSeq.
type manifest struct {
	Seq           uint64 `json:"seq"`
	WalSeq        uint64 `json:"wal_seq"`
	StateHash     string `json:"state_hash"`
	VirtualTimeNs int64  `json:"virtual_time_ns"`

	Config chunkRef `json:"config"`
	State  chunkRef `json:"state"`
	// Journal chunks, in order; concatenating their entry arrays
	// rebuilds the full journal.
	Journal        []journalChunk `json:"journal"`
	JournalEntries int            `json:"journal_entries"`
}

type journalChunk struct {
	chunkRef
	Entries int `json:"entries"`
}

// manifestEnvelope wraps the manifest with the same format/version/
// checksum scheme snap uses for snapshots.
type manifestEnvelope struct {
	Format         string          `json:"format"`
	Version        int             `json:"version"`
	Payload        json.RawMessage `json:"payload"`
	ChecksumSHA256 string          `json:"checksum_sha256"`
}

// statePart is the non-journal, non-config remainder of a
// snap.Payload, stored as one chunk. It changes on every checkpoint
// (virtual time moved), so it is the snapshot's incremental cost.
type statePart struct {
	VirtualTimeNs   int64            `json:"virtual_time_ns"`
	EventsProcessed uint64           `json:"events_processed"`
	StateHash       string           `json:"state_hash"`
	State           snap.StateExport `json:"state"`
}

// checksumJSON mirrors snap's snapshot checksum: SHA-256 over the
// whitespace-compacted JSON, so formatting never invalidates a
// manifest but any semantic change does.
func checksumJSON(payload []byte) string {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		sum := sha256.Sum256(payload)
		return hex.EncodeToString(sum[:])
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:])
}

func manifestName(seq uint64) string {
	return fmt.Sprintf("manifest-%08d.json", seq)
}

func parseManifestName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "manifest-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "manifest-"), ".json"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listManifests returns manifest sequence numbers ascending.
func listManifests(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: read snapshots dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseManifestName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func writeManifest(dir string, m manifest, sync bool) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: marshal manifest: %w", err)
	}
	env := manifestEnvelope{
		Format:         ManifestFormat,
		Version:        ManifestVersion,
		Payload:        raw,
		ChecksumSHA256: checksumJSON(raw),
	}
	doc, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal manifest envelope: %w", err)
	}
	path := filepath.Join(dir, manifestName(m.Seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if sync {
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish manifest: %w", err)
	}
	return nil
}

func readManifest(dir string, seq uint64) (manifest, error) {
	doc, err := os.ReadFile(filepath.Join(dir, manifestName(seq)))
	if err != nil {
		return manifest{}, fmt.Errorf("store: read manifest %d: %w", seq, err)
	}
	var env manifestEnvelope
	if err := json.Unmarshal(doc, &env); err != nil {
		return manifest{}, fmt.Errorf("store: decode manifest %d: %w", seq, err)
	}
	if env.Format != ManifestFormat {
		return manifest{}, fmt.Errorf("store: manifest %d format %q is not %q", seq, env.Format, ManifestFormat)
	}
	if env.Version != ManifestVersion {
		return manifest{}, fmt.Errorf("store: unsupported manifest version %d (want %d)", env.Version, ManifestVersion)
	}
	if got := checksumJSON(env.Payload); got != env.ChecksumSHA256 {
		return manifest{}, fmt.Errorf("store: manifest %d checksum mismatch: recorded %s, computed %s", seq, env.ChecksumSHA256, got)
	}
	var m manifest
	if err := json.Unmarshal(env.Payload, &m); err != nil {
		return manifest{}, fmt.Errorf("store: decode manifest %d payload: %w", seq, err)
	}
	return m, nil
}

// chunkRefs lists every chunk hash a manifest references.
func (m manifest) chunkRefs() []string {
	refs := []string{m.Config.SHA256, m.State.SHA256}
	for _, jc := range m.Journal {
		refs = append(refs, jc.SHA256)
	}
	return refs
}

// loadPayload reassembles the snap.Payload a manifest describes,
// verifying every chunk against its address.
func (m manifest) loadPayload(pool *chunkPool) (snap.Payload, error) {
	var p snap.Payload
	cfgData, err := pool.get(m.Config)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(cfgData, &p.Config); err != nil {
		return p, fmt.Errorf("store: decode config chunk: %w", err)
	}
	stateData, err := pool.get(m.State)
	if err != nil {
		return p, err
	}
	var sp statePart
	if err := json.Unmarshal(stateData, &sp); err != nil {
		return p, fmt.Errorf("store: decode state chunk: %w", err)
	}
	p.VirtualTimeNs = sp.VirtualTimeNs
	p.EventsProcessed = sp.EventsProcessed
	p.StateHash = sp.StateHash
	p.State = sp.State
	p.Journal.Entries = make([]snap.Entry, 0, m.JournalEntries)
	for _, jc := range m.Journal {
		data, err := pool.get(jc.chunkRef)
		if err != nil {
			return p, err
		}
		var entries []snap.Entry
		if err := json.Unmarshal(data, &entries); err != nil {
			return p, fmt.Errorf("store: decode journal chunk: %w", err)
		}
		if len(entries) != jc.Entries {
			return p, fmt.Errorf("store: journal chunk holds %d entries, manifest says %d", len(entries), jc.Entries)
		}
		p.Journal.Entries = append(p.Journal.Entries, entries...)
	}
	if len(p.Journal.Entries) != m.JournalEntries {
		return p, fmt.Errorf("store: journal reassembled to %d entries, manifest says %d", len(p.Journal.Entries), m.JournalEntries)
	}
	return p, nil
}
