package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WAL record wire format, little-endian:
//
//	[4] magic "ihw1"
//	[8] record sequence number (monotonic from 1, never reset by rotation)
//	[4] payload length
//	[4] CRC32-Castagnoli of the payload
//	[n] payload (compact JSON of one snap.Entry)
//
// Records are append-only across rotating segment files named
// seg-<firstSeq>.wal. Recovery reads records in order and stops at the
// first one that fails its length, magic, sequence, or checksum check:
// the bad tail is truncated and any later segment files (unreachable
// past the corruption) are deleted. Everything before the first bad
// record is, by construction, intact.

const (
	walHeaderSize = 20
	// walMaxPayload bounds a single record so a corrupted length field
	// cannot drive a giant allocation during recovery.
	walMaxPayload = 64 << 20
	// defaultSegmentBytes rotates segments at 4 MB.
	defaultSegmentBytes = 4 << 20
)

var walMagic = [4]byte{'i', 'h', 'w', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segInfo describes one on-disk segment file.
type segInfo struct {
	path     string
	firstSeq uint64 // sequence of the segment's first record
	lastSeq  uint64 // sequence of its last record; firstSeq-1 when empty
}

// wal is the append-only segmented journal log under <dir>.
type wal struct {
	dir    string
	sync   bool
	segCap int64

	f        *os.File // current (last) segment, open for append
	size     int64    // current segment size
	nextSeq  uint64   // sequence the next appended record will carry
	segments []segInfo

	// Recovery accounting from the open-time scan.
	truncatedBytes int64
	orphanSegments int
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("seg-%020d.wal", firstSeq)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// openWAL scans <dir>, validates every record, truncates a corrupt
// tail, deletes orphaned later segments, and opens the last segment
// for append.
func openWAL(dir string, sync bool, segCap int64) (*wal, error) {
	if segCap <= 0 {
		segCap = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create journal dir: %w", err)
	}
	w := &wal{dir: dir, sync: sync, segCap: segCap, nextSeq: 1}

	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		firstSeq, _ := parseSegName(name)
		if firstSeq != w.nextSeq && !(i == 0 && firstSeq >= 1) {
			// A gap between segments means records are missing: nothing
			// past the gap can be trusted.
			w.orphanSegments += len(names) - i
			for _, orphan := range names[i:] {
				os.Remove(filepath.Join(dir, orphan))
			}
			break
		}
		if i == 0 {
			w.nextSeq = firstSeq
		}
		seg := segInfo{path: filepath.Join(dir, name), firstSeq: firstSeq, lastSeq: firstSeq - 1}
		validBytes, lastSeq, err := w.scanSegment(seg.path, firstSeq)
		if err != nil {
			return nil, err
		}
		seg.lastSeq = lastSeq
		w.segments = append(w.segments, seg)
		w.nextSeq = lastSeq + 1
		if fi, statErr := os.Stat(seg.path); statErr == nil && fi.Size() > validBytes {
			// Corrupt or truncated tail: cut it, and drop every later
			// segment — their records follow the corruption.
			w.truncatedBytes += fi.Size() - validBytes
			if err := os.Truncate(seg.path, validBytes); err != nil {
				return nil, fmt.Errorf("store: truncate corrupt tail of %s: %w", seg.path, err)
			}
			w.orphanSegments += len(names) - i - 1
			for _, orphan := range names[i+1:] {
				os.Remove(filepath.Join(dir, orphan))
			}
			break
		}
	}
	if err := w.openTail(); err != nil {
		return nil, err
	}
	return w, nil
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read journal dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment validates records sequentially and returns the byte
// length of the valid prefix plus the last valid sequence number
// (wantSeq-1 if the segment holds no valid record).
func (w *wal) scanSegment(path string, wantSeq uint64) (validBytes int64, lastSeq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	lastSeq = wantSeq - 1
	var off int64
	hdr := make([]byte, walHeaderSize)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return off, lastSeq, nil // clean EOF or partial header: prefix ends here
		}
		if [4]byte(hdr[0:4]) != walMagic {
			return off, lastSeq, nil
		}
		seq := binary.LittleEndian.Uint64(hdr[4:12])
		n := binary.LittleEndian.Uint32(hdr[12:16])
		sum := binary.LittleEndian.Uint32(hdr[16:20])
		if seq != wantSeq || n > walMaxPayload {
			return off, lastSeq, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, lastSeq, nil // record body cut off mid-write
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, lastSeq, nil
		}
		off += walHeaderSize + int64(n)
		lastSeq = seq
		wantSeq++
	}
}

// openTail opens the last segment for append, creating the first
// segment if the log is empty.
func (w *wal) openTail() error {
	if len(w.segments) == 0 {
		return w.newSegment()
	}
	tail := w.segments[len(w.segments)-1]
	f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open tail segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat tail segment: %w", err)
	}
	w.f, w.size = f, fi.Size()
	return nil
}

// newSegment closes the current segment and starts a fresh one whose
// name records the sequence of its first future record.
func (w *wal) newSegment() error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
		w.f = nil
	}
	path := filepath.Join(w.dir, segName(w.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	w.f, w.size = f, 0
	w.segments = append(w.segments, segInfo{path: path, firstSeq: w.nextSeq, lastSeq: w.nextSeq - 1})
	return nil
}

// append writes one record carrying the next sequence number. The
// record reaches the kernel in a single write(2), so a SIGKILL between
// appends never leaves a half-visible record; fsync (sync mode) extends
// that to machine crashes.
func (w *wal) append(payload []byte) error {
	if len(payload) > walMaxPayload {
		return fmt.Errorf("store: journal record of %d bytes exceeds the %d-byte limit", len(payload), walMaxPayload)
	}
	if w.size > 0 && w.size+walHeaderSize+int64(len(payload)) > w.segCap {
		if err := w.newSegment(); err != nil {
			return err
		}
	}
	rec := make([]byte, walHeaderSize+len(payload))
	copy(rec[0:4], walMagic[:])
	binary.LittleEndian.PutUint64(rec[4:12], w.nextSeq)
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[16:20], crc32.Checksum(payload, castagnoli))
	copy(rec[walHeaderSize:], payload)
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("store: append journal record: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: sync journal: %w", err)
		}
	}
	w.size += int64(len(rec))
	w.segments[len(w.segments)-1].lastSeq = w.nextSeq
	w.nextSeq++
	return nil
}

// scan streams every valid record with sequence > from, in order.
// Segments were validated at open, so errors here indicate concurrent
// external modification and abort the scan.
func (w *wal) scan(from uint64, fn func(seq uint64, payload []byte) error) error {
	for _, seg := range w.segments {
		if seg.lastSeq <= from {
			continue
		}
		if err := scanRecords(seg, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func scanRecords(seg segInfo, from uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("store: open segment for scan: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, walHeaderSize)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return nil
		}
		if [4]byte(hdr[0:4]) != walMagic {
			return fmt.Errorf("store: segment %s changed under scan", seg.path)
		}
		seq := binary.LittleEndian.Uint64(hdr[4:12])
		n := binary.LittleEndian.Uint32(hdr[12:16])
		sum := binary.LittleEndian.Uint32(hdr[16:20])
		if n > walMaxPayload {
			return fmt.Errorf("store: segment %s changed under scan", seg.path)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("store: segment %s changed under scan: %w", seg.path, err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return fmt.Errorf("store: segment %s failed its checksum under scan", seg.path)
		}
		if seq > from {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
	}
}

// pruneThrough deletes closed segments whose every record is <= seq —
// they are fully covered by a snapshot and no longer needed for
// recovery. The open tail segment is never pruned.
func (w *wal) pruneThrough(seq uint64) (removed int, err error) {
	kept := w.segments[:0]
	for i, seg := range w.segments {
		closed := i < len(w.segments)-1
		if closed && seg.lastSeq <= seq {
			if err := os.Remove(seg.path); err != nil {
				return removed, fmt.Errorf("store: prune segment: %w", err)
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	w.segments = kept
	return removed, nil
}

// rotate closes the current segment and starts a new one, so a
// following pruneThrough can reclaim it once covered by a snapshot.
func (w *wal) rotate() error {
	if w.size == 0 {
		return nil
	}
	return w.newSegment()
}

// reset deletes every segment and restarts the log at sequence 1.
func (w *wal) reset() error {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	for _, seg := range w.segments {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("store: reset journal: %w", err)
		}
	}
	w.segments = nil
	w.nextSeq = 1
	w.size = 0
	return w.newSegment()
}

// lastSeq returns the sequence of the most recently appended record, 0
// when the log is empty.
func (w *wal) lastSeq() uint64 { return w.nextSeq - 1 }

// firstSeq returns the sequence of the earliest record still on disk
// (nextSeq when the log holds none): 1 means the full history is
// present, anything higher means the prefix was pruned under snapshot
// coverage.
func (w *wal) firstSeq() uint64 {
	for _, seg := range w.segments {
		if seg.lastSeq >= seg.firstSeq {
			return seg.firstSeq
		}
	}
	return w.nextSeq
}

// fastForward advances the next sequence past seq, opening a fresh
// segment when the current one already holds records. Recovery uses it
// when a corrupt tail cut the log below a snapshot's coverage: new
// appends must not reuse sequence numbers the snapshot already folded
// in, or a later recovery would skip them as replayed.
func (w *wal) fastForward(seq uint64) error {
	if w.nextSeq > seq {
		return nil
	}
	w.nextSeq = seq + 1
	if w.size > 0 {
		return w.newSegment()
	}
	// The tail segment is empty; its name no longer matches its first
	// future record, so restart it under the right name.
	tail := w.segments[len(w.segments)-1]
	w.f.Close()
	w.f = nil
	os.Remove(tail.path)
	w.segments = w.segments[:len(w.segments)-1]
	return w.newSegment()
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
