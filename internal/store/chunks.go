package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// chunkRef names one content-addressed blob: its SHA-256 in hex and
// its size. The hash is the identity — equal content is stored once no
// matter how many snapshots (or hosts, in a fleet store) reference it.
type chunkRef struct {
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// chunkPool is a content-addressed blob store under <dir>, laid out as
// chunks/<first-2-hex>/<sha256-hex>. Writes go through a temp file and
// a rename, so a crash mid-write leaves only an ignorable *.tmp — a
// chunk file either exists complete or not at all.
type chunkPool struct {
	dir string
	// shared pools back several host stores (fleet mode); unreferenced-
	// chunk garbage collection is disabled there because one host cannot
	// see the others' references.
	shared bool
	sync   bool
}

func openChunkPool(dir string, shared, sync bool) (*chunkPool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create chunk dir: %w", err)
	}
	p := &chunkPool{dir: dir, shared: shared, sync: sync}
	p.cleanTemp()
	return p, nil
}

// cleanTemp removes leftover temp files from interrupted writes.
func (p *chunkPool) cleanTemp() {
	matches, _ := filepath.Glob(filepath.Join(p.dir, "chunk-*.tmp"))
	for _, m := range matches {
		os.Remove(m)
	}
}

func (p *chunkPool) path(hash string) string {
	return filepath.Join(p.dir, hash[:2], hash)
}

// put stores data under its SHA-256, reusing an existing chunk with
// the same content.
func (p *chunkPool) put(data []byte) (ref chunkRef, reused bool, err error) {
	sum := sha256.Sum256(data)
	ref = chunkRef{SHA256: hex.EncodeToString(sum[:]), Size: int64(len(data))}
	path := p.path(ref.SHA256)
	if fi, err := os.Stat(path); err == nil && fi.Size() == ref.Size {
		return ref, true, nil
	}
	f, err := os.CreateTemp(p.dir, "chunk-*.tmp")
	if err != nil {
		return ref, false, fmt.Errorf("store: create chunk temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return ref, false, fmt.Errorf("store: write chunk: %w", err)
	}
	if p.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return ref, false, fmt.Errorf("store: sync chunk: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return ref, false, fmt.Errorf("store: close chunk: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		os.Remove(tmp)
		return ref, false, fmt.Errorf("store: create chunk prefix dir: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return ref, false, fmt.Errorf("store: publish chunk: %w", err)
	}
	return ref, false, nil
}

// get reads a chunk and verifies its content against the address it
// was requested by. A mismatch means on-disk corruption.
func (p *chunkPool) get(ref chunkRef) ([]byte, error) {
	data, err := os.ReadFile(p.path(ref.SHA256))
	if err != nil {
		return nil, fmt.Errorf("store: read chunk %s: %w", ref.SHA256, err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != ref.SHA256 || int64(len(data)) != ref.Size {
		return nil, fmt.Errorf("store: chunk %s is corrupt on disk", ref.SHA256)
	}
	return data, nil
}

// gc removes chunks not in keep. No-op for shared (fleet) pools, where
// references span hosts the pool cannot enumerate.
func (p *chunkPool) gc(keep map[string]bool) (removed int, err error) {
	if p.shared {
		return 0, nil
	}
	prefixes, err := os.ReadDir(p.dir)
	if err != nil {
		return 0, fmt.Errorf("store: gc chunks: %w", err)
	}
	for _, pre := range prefixes {
		if !pre.IsDir() || len(pre.Name()) != 2 {
			continue
		}
		chunks, err := os.ReadDir(filepath.Join(p.dir, pre.Name()))
		if err != nil {
			continue
		}
		for _, c := range chunks {
			name := c.Name()
			if !isHexHash(name) || keep[name] {
				continue
			}
			if err := os.Remove(filepath.Join(p.dir, pre.Name(), name)); err == nil {
				removed++
			}
		}
	}
	return removed, nil
}

func isHexHash(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	return strings.IndexFunc(s, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}
