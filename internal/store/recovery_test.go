package store

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/simtime"
	"repro/internal/snap"
)

// lastSegment returns the path of the highest-named WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "journal", "seg-*.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

// TestCrashRecovery is the crash-recovery table: each corruption is a
// physical failure mode a kill or torn write can leave behind, and
// each must recover to the last valid entry with a journal that still
// passes the twice-replay determinism gate.
func TestCrashRecovery(t *testing.T) {
	cases := []struct {
		name string
		// corrupt damages the store directory after a clean run.
		corrupt func(t *testing.T, dir string)
		// wantSnapshot is whether recovery should still come from the
		// checkpoint (vs falling back to WAL-only replay).
		wantSnapshot bool
	}{
		{
			// A record whose bytes stop mid-payload: the tail the kernel
			// never finished writing.
			name: "truncated tail segment",
			corrupt: func(t *testing.T, dir string) {
				seg := lastSegment(t, dir)
				fi, err := os.Stat(seg)
				if err != nil || fi.Size() < 10 {
					t.Fatalf("stat %s: size %d err %v", seg, fi.Size(), err)
				}
				if err := os.Truncate(seg, fi.Size()-7); err != nil {
					t.Fatalf("truncate: %v", err)
				}
			},
			wantSnapshot: true,
		},
		{
			// A record whose payload bytes were torn: the checksum catches
			// it and recovery cuts the log there.
			name: "corrupted checksum entry",
			corrupt: func(t *testing.T, dir string) {
				seg := lastSegment(t, dir)
				data, err := os.ReadFile(seg)
				if err != nil || len(data) < walHeaderSize+4 {
					t.Fatalf("read %s: %d bytes, err %v", seg, len(data), err)
				}
				// Flip a byte inside the last record's payload.
				data[len(data)-3] ^= 0xff
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatalf("rewrite: %v", err)
				}
			},
			wantSnapshot: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sess, st := newStoredSession(t, dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
			drive(t, sess)
			if _, err := st.SaveSnapshot(sess.BuildPayload()); err != nil {
				t.Fatalf("SaveSnapshot: %v", err)
			}
			// Commands past the checkpoint; the corruption lands among
			// these.
			hashTimeNs := int64(sess.Now())
			admit(t, sess, "tail-1")
			if err := sess.Advance(200 * simtime.Microsecond); err != nil {
				t.Fatalf("Advance: %v", err)
			}
			admit(t, sess, "tail-2")
			st.Close()

			tc.corrupt(t, dir)

			st2, err := Open(dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
			if err != nil {
				t.Fatalf("reopen after corruption: %v", err)
			}
			recovered, rep, err := st2.Recover()
			if err != nil {
				t.Fatalf("Recover after corruption: %v", err)
			}
			if tc.wantSnapshot && rep.SnapshotSeq == 0 {
				t.Fatalf("expected recovery from the checkpoint, got WAL-only (%+v)", rep)
			}

			// Recovery lands at or after the checkpoint and at or before
			// the full run — exactly the valid prefix of the log.
			if recovered.Journal().Len() > sess.Journal().Len() {
				t.Fatalf("recovered journal longer than the original: %d > %d",
					recovered.Journal().Len(), sess.Journal().Len())
			}
			if recovered.Journal().Len() < 1 {
				t.Fatalf("recovered journal is empty")
			}
			// Never behind the checkpoint: the corrupt tail cost at most
			// the commands after the last intact record.
			if got := int64(recovered.Now()); got < hashTimeNs {
				t.Fatalf("recovered time %d regressed past the checkpoint's %d", got, hashTimeNs)
			}

			// The recovered journal must itself be a deterministic,
			// valid command log.
			if err := func() error { j := recovered.Journal(); return j.Validate() }(); err != nil {
				t.Fatalf("recovered journal invalid: %v", err)
			}
			if div, err := snap.CheckDeterminism(recovered.Config(), recovered.Journal()); err != nil {
				t.Fatalf("CheckDeterminism on recovered journal: %v (divergence %+v)", err, div)
			}

			// And the recovered state must equal an independent replay of
			// that journal — byte-identical.
			replayed, err := snap.Replay(recovered.Config(), recovered.Journal())
			if err != nil {
				t.Fatalf("Replay of recovered journal: %v", err)
			}
			if got, want := snap.StateHash(replayed.Manager()), snap.StateHash(recovered.Manager()); got != want {
				t.Fatalf("replayed hash %s != recovered hash %s", got, want)
			}
		})
	}
}

// TestPartialChunkWriteFallsBackAGeneration tears a chunk only the
// newest checkpoint references — the partial-write failure mode — and
// expects recovery to skip that generation, restore the previous one,
// and replay the WAL tail into a byte-identical final state: nothing
// is lost, because WAL pruning is bounded by the oldest retained
// generation, not the newest.
func TestPartialChunkWriteFallsBackAGeneration(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
	drive(t, sess)
	if _, err := st.SaveSnapshot(sess.BuildPayload()); err != nil {
		t.Fatalf("SaveSnapshot gen 1: %v", err)
	}
	admit(t, sess, "mid")
	if err := sess.Advance(200 * simtime.Microsecond); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if _, err := st.SaveSnapshot(sess.BuildPayload()); err != nil {
		t.Fatalf("SaveSnapshot gen 2: %v", err)
	}
	admit(t, sess, "tail")
	wantHash := snap.StateHash(sess.Manager())
	wantLen := sess.Journal().Len()
	st.Close()

	// Tear generation 2's state chunk — unique to it; the config and
	// shared journal-prefix chunks stay intact for generation 1.
	m2, err := readManifest(filepath.Join(dir, "snapshots"), 2)
	if err != nil {
		t.Fatalf("read gen-2 manifest: %v", err)
	}
	chunk := filepath.Join(dir, "chunks", m2.State.SHA256[:2], m2.State.SHA256)
	fi, err := os.Stat(chunk)
	if err != nil {
		t.Fatalf("stat gen-2 state chunk: %v", err)
	}
	if err := os.Truncate(chunk, fi.Size()/2); err != nil {
		t.Fatalf("truncate chunk: %v", err)
	}

	st2, err := Open(dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recovered, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.SnapshotsSkipped != 1 || rep.SnapshotSeq != 1 {
		t.Fatalf("expected fallback from gen 2 to gen 1, report %+v", rep)
	}
	if got := snap.StateHash(recovered.Manager()); got != wantHash {
		t.Fatalf("recovered hash %s, want %s (nothing may be lost)", got, wantHash)
	}
	if got := recovered.Journal().Len(); got != wantLen {
		t.Fatalf("recovered journal has %d entries, want %d", got, wantLen)
	}
	if _, err := snap.CheckDeterminism(recovered.Config(), recovered.Journal()); err != nil {
		t.Fatalf("CheckDeterminism on recovered journal: %v", err)
	}
}

// TestAllCheckpointsCorruptRefusesPartialRecovery tears every chunk:
// with no loadable generation and the WAL prefix pruned under snapshot
// coverage, recovery must refuse rather than silently rebuild a world
// missing its history.
func TestAllCheckpointsCorruptRefusesPartialRecovery(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
	drive(t, sess)
	if _, err := st.SaveSnapshot(sess.BuildPayload()); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	admit(t, sess, "tail")
	st.Close()

	var chunks []string
	filepath.Walk(filepath.Join(dir, "chunks"), func(path string, fi os.FileInfo, err error) error {
		if err == nil && fi.Mode().IsRegular() && isHexHash(fi.Name()) {
			chunks = append(chunks, path)
		}
		return nil
	})
	if len(chunks) == 0 {
		t.Fatalf("no chunks under %s", dir)
	}
	for _, c := range chunks {
		fi, _ := os.Stat(c)
		if err := os.Truncate(c, fi.Size()/2); err != nil {
			t.Fatalf("truncate chunk: %v", err)
		}
	}

	st2, err := Open(dir, Options{Sync: SyncOS, JournalChunkEntries: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, rep, err := st2.Recover(); err == nil {
		t.Fatalf("Recover should refuse a store with no loadable checkpoint and a pruned WAL prefix (report %+v)", rep)
	}
}

// TestRecoverAfterMidSegmentCorruption corrupts a record that is NOT
// the last one: everything from the bad record on is discarded and the
// prefix must still recover and extend cleanly.
func TestRecoverAfterMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	sess, st := newStoredSession(t, dir, Options{Sync: SyncOS})
	drive(t, sess)
	st.Close()

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Flip a byte roughly in the middle of the segment, inside some
	// earlier record.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}

	st2, err := Open(dir, Options{Sync: SyncOS})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recovered, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatalf("expected tail truncation, report %+v", rep)
	}
	if recovered.Journal().Len() >= sess.Journal().Len() {
		t.Fatalf("mid-segment corruption should shorten the journal: %d >= %d",
			recovered.Journal().Len(), sess.Journal().Len())
	}
	// The store stays usable: new commands append past the truncation
	// and survive another recovery.
	admit(t, recovered, "after-recovery")
	wantHash := snap.StateHash(recovered.Manager())
	st2.Close()

	st3, err := Open(dir, Options{Sync: SyncOS})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	again, _, err := st3.Recover()
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if got := snap.StateHash(again.Manager()); got != wantHash {
		t.Fatalf("second recovery hash %s, want %s", got, wantHash)
	}
}
