package store

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// hostNamePattern keeps host directory names path-safe.
var hostNamePattern = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// FleetStore roots one Store per host under <dir>/hosts/<name>, all
// sharing a single content-addressed chunk pool at <dir>/chunks — the
// dedup that makes a fleet checkpoint incremental: identical blobs
// (unchanged host states, common journal prefixes) are stored once for
// the whole fleet, not once per host.
type FleetStore struct {
	dir  string
	opts Options
	pool *chunkPool

	mu    sync.Mutex
	hosts map[string]*Store
}

// OpenFleet opens (or initializes) a fleet store directory.
func OpenFleet(dir string, opts Options) (*FleetStore, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, "hosts"), 0o755); err != nil {
		return nil, fmt.Errorf("store: create fleet hosts dir: %w", err)
	}
	pool, err := openChunkPool(filepath.Join(dir, "chunks"), true, opts.Sync == SyncAlways)
	if err != nil {
		return nil, err
	}
	return &FleetStore{dir: dir, opts: opts, pool: pool, hosts: map[string]*Store{}}, nil
}

// Dir returns the fleet store's root directory.
func (f *FleetStore) Dir() string { return f.dir }

// Host opens (or returns the already-open) per-host store.
func (f *FleetStore) Host(name string) (*Store, error) {
	if !hostNamePattern.MatchString(name) {
		return nil, fmt.Errorf("store: host name %q is not storable", name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.hosts[name]; ok {
		return s, nil
	}
	s, err := open(filepath.Join(f.dir, "hosts", name), f.opts, f.pool)
	if err != nil {
		return nil, err
	}
	f.hosts[name] = s
	return s, nil
}

// Stats aggregates per-host store stats for /fleet/healthz.
type FleetStats struct {
	Dir              string     `json:"dir"`
	Sync             SyncPolicy `json:"sync"`
	Hosts            int        `json:"hosts"`
	WalRecords       uint64     `json:"wal_records"`
	WalSegments      int        `json:"wal_segments"`
	SnapshottedHosts int        `json:"snapshotted_hosts"`
}

// Stats sums occupancy across every open host store.
func (f *FleetStore) Stats() FleetStats {
	f.mu.Lock()
	hosts := make([]*Store, 0, len(f.hosts))
	for _, s := range f.hosts {
		hosts = append(hosts, s)
	}
	f.mu.Unlock()
	st := FleetStats{Dir: f.dir, Sync: f.opts.Sync, Hosts: len(hosts)}
	for _, s := range hosts {
		hs := s.Stats()
		st.WalRecords += hs.WalRecords
		st.WalSegments += hs.WalSegments
		if hs.SnapshotSeq > 0 {
			st.SnapshottedHosts++
		}
	}
	return st
}

// Close releases every open host store.
func (f *FleetStore) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for _, s := range f.hosts {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
