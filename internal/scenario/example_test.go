package scenario_test

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
)

// An incident drill: inject a silent degradation under a live KV
// workload and assert the platform detects and localizes it in time.
func ExampleRun() {
	spec, err := scenario.Load(strings.NewReader(`{
	  "name": "drill",
	  "preset": "two-socket",
	  "seed": 42,
	  "duration_us": 6000,
	  "workloads": [{"kind": "kv", "tenant": "kv", "at_us": 0}],
	  "faults": [{"kind": "degrade", "link": "pcieswitch0->nic0",
	              "at_us": 3000, "loss_frac": 0.2, "extra_us": 10}],
	  "asserts": [
	    {"kind": "detected_within_us", "within_us": 1000},
	    {"kind": "top_suspect", "link": "pcieswitch0->nic0"}
	  ]
	}`))
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := scenario.Run(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("passed:", res.Passed)
	for _, c := range res.Checks {
		fmt.Printf("%s: %v\n", c.Assert.Kind, c.Passed)
	}
	// Output:
	// passed: true
	// detected_within_us: true
	// top_suspect: true
}
