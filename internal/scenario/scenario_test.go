package scenario

import (
	"strings"
	"testing"
)

const degradeDrill = `{
  "name": "silent-switch-degradation",
  "preset": "two-socket",
  "seed": 42,
  "duration_us": 6000,
  "workloads": [
    {"kind": "kv", "tenant": "kv", "at_us": 0}
  ],
  "faults": [
    {"kind": "degrade", "link": "pcieswitch0->nic0", "at_us": 3000, "loss_frac": 0.2, "extra_us": 10}
  ],
  "asserts": [
    {"kind": "detected_within_us", "within_us": 1000},
    {"kind": "top_suspect", "link": "pcieswitch0->nic0"}
  ]
}`

func TestLoadValidation(t *testing.T) {
	if _, err := Load(strings.NewReader(degradeDrill)); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`{`,
		`{"name":"", "preset":"two-socket", "duration_us":1}`,
		`{"name":"x", "preset":"warp", "duration_us":1}`,
		`{"name":"x", "preset":"two-socket", "duration_us":0}`,
		`{"name":"x", "preset":"two-socket", "duration_us":1, "workloads":[{"kind":"quantum","tenant":"t"}]}`,
		`{"name":"x", "preset":"two-socket", "duration_us":1, "workloads":[{"kind":"kv","tenant":""}]}`,
		`{"name":"x", "preset":"two-socket", "duration_us":1, "faults":[{"kind":"degrade"}]}`,
		`{"name":"x", "preset":"two-socket", "duration_us":1, "faults":[{"kind":"config"}]}`,
		`{"name":"x", "preset":"two-socket", "duration_us":1, "faults":[{"kind":"meteor","link":"l"}]}`,
		`{"name":"x", "preset":"two-socket", "duration_us":1, "asserts":[{"kind":"vibes"}]}`,
		`{"name":"x", "preset":"two-socket", "duration_us":1, "bogus": 1}`,
	}
	for i, src := range bad {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRunDegradeDrillPasses(t *testing.T) {
	spec, err := Load(strings.NewReader(degradeDrill))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("drill failed: %+v", res.Checks)
	}
	if len(res.Checks) != 2 {
		t.Fatalf("checks: %d", len(res.Checks))
	}
	if len(res.Timeline) == 0 {
		t.Fatal("empty timeline")
	}
}

func TestRunIsolationDrill(t *testing.T) {
	const drill = `{
	  "name": "kv-guarantee-under-antagonists",
	  "preset": "two-socket",
	  "seed": 42,
	  "duration_us": 3000,
	  "tenants": [
	    {"tenant": "kv", "targets": [
	      {"src": "nic0", "dst": "socket0.dimm0_0", "rate_gbps": 80},
	      {"src": "socket0.dimm0_0", "dst": "nic0", "rate_gbps": 80}
	    ]}
	  ],
	  "workloads": [
	    {"kind": "kv", "tenant": "kv", "at_us": 0},
	    {"kind": "ml", "tenant": "ml", "at_us": 200},
	    {"kind": "loopback", "tenant": "evil", "at_us": 400}
	  ],
	  "asserts": [
	    {"kind": "p99_below_us", "tenant": "kv", "value_us": 31},
	    {"kind": "tenant_rate_at_least_gbps", "tenant": "evil", "gbps": 50},
	    {"kind": "no_detection"}
	  ]
	}`
	spec, err := Load(strings.NewReader(drill))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.Passed {
			t.Errorf("check %s failed: %s", c.Assert.Kind, c.Detail)
		}
	}
}

func TestRunConfigDriftDrill(t *testing.T) {
	const drill = `{
	  "name": "ddio-flip",
	  "preset": "two-socket",
	  "seed": 1,
	  "duration_us": 2000,
	  "faults": [
	    {"kind": "config", "component": "socket0.llc", "key": "ddio", "value": "off", "at_us": 500}
	  ],
	  "asserts": [
	    {"kind": "drift_alert"}
	  ]
	}`
	spec, err := Load(strings.NewReader(drill))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("drill failed: %+v", res.Checks)
	}
}

func TestRunFailingAssertReported(t *testing.T) {
	const drill = `{
	  "name": "impossible",
	  "preset": "two-socket",
	  "seed": 1,
	  "duration_us": 1000,
	  "asserts": [
	    {"kind": "drift_alert"}
	  ]
	}`
	spec, _ := Load(strings.NewReader(drill))
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("drill with unmet assert passed")
	}
}

func TestRunBadAdmission(t *testing.T) {
	const drill = `{
	  "name": "over-ask",
	  "preset": "two-socket",
	  "seed": 1,
	  "duration_us": 1000,
	  "tenants": [
	    {"tenant": "greedy", "targets": [{"src": "gpu0", "dst": "nic0", "rate_gbps": 9999}]}
	  ]
	}`
	spec, _ := Load(strings.NewReader(drill))
	if _, err := Run(spec); err == nil {
		t.Fatal("infeasible admission accepted")
	}
}

func TestRunBadFaultLink(t *testing.T) {
	const drill = `{
	  "name": "bad-link",
	  "preset": "two-socket",
	  "seed": 1,
	  "duration_us": 1000,
	  "faults": [{"kind": "fail", "link": "no->where", "at_us": 100}]
	}`
	spec, _ := Load(strings.NewReader(drill))
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown fault link accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec, _ := Load(strings.NewReader(degradeDrill))
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Checks) != len(b.Checks) {
		t.Fatal("nondeterministic checks")
	}
	for i := range a.Checks {
		if a.Checks[i].Detail != b.Checks[i].Detail {
			t.Fatalf("nondeterministic detail: %q vs %q", a.Checks[i].Detail, b.Checks[i].Detail)
		}
	}
}
