package scenario

import (
	"sort"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/snap"
	"repro/internal/topology"
)

// ToJournal converts a drill spec into a snap reconstruction config
// and command journal: admissions at time zero, timeline operations in
// schedule order, and a final advance to the drill's duration. A drill
// on disk thereby doubles as a determinism-regression input — `ihdiag
// replay` and snap.CheckDeterminism consume the result directly.
//
// The journal reproduces the drill's commands, not its event
// interleaving: Run schedules timeline callbacks inside the engine
// while replay applies them between RunUntil calls, so the two paths
// allocate event sequence numbers differently. Determinism claims are
// therefore always replay-vs-replay or run-vs-run, never across.
func ToJournal(spec Spec) (snap.Config, snap.Journal) {
	opts := core.DefaultOptions()
	opts.Seed = spec.Seed
	if spec.ArbiterMode != "" {
		opts.Arbiter.Mode = arbiter.Mode(spec.ArbiterMode)
	}
	cfg := snap.Config{Preset: spec.Preset, Options: opts}

	var j snap.Journal
	add := func(e snap.Entry) {
		e.Seq = uint64(len(j.Entries))
		j.Entries = append(j.Entries, e)
	}

	for _, ts := range spec.Tenants {
		e := snap.Entry{Kind: snap.KindAdmit, Tenant: ts.Tenant}
		for _, tg := range ts.Targets {
			e.Targets = append(e.Targets, snap.Target{
				Src: tg.Src, Dst: tg.Dst,
				// Same conversion Run uses, for identical floats.
				RateBps: float64(topology.Gbps(tg.RateGbps)),
			})
		}
		add(e)
	}

	// Merge workloads and faults into one timeline. Run schedules all
	// workloads before all faults, so ties on at_us keep that order
	// (stable sort over workloads-first input).
	type op struct {
		atUs int64
		e    snap.Entry
	}
	var ops []op
	for _, w := range spec.Workloads {
		ops = append(ops, op{w.AtUs, snap.Entry{
			Kind: snap.KindWorkload, Workload: w.Kind,
			Tenant: w.Tenant, Src: w.Src, Dst: w.Dst,
		}})
	}
	for _, f := range spec.Faults {
		var e snap.Entry
		switch f.Kind {
		case "degrade":
			e = snap.Entry{Kind: snap.KindDegrade, Link: f.Link,
				LossFrac: f.LossFrac, ExtraNs: f.ExtraUs * 1000}
		case "fail":
			e = snap.Entry{Kind: snap.KindFail, Link: f.Link}
		case "restore":
			e = snap.Entry{Kind: snap.KindRestoreLink, Link: f.Link}
		case "config":
			e = snap.Entry{Kind: snap.KindSetConfig,
				Component: f.Component, Key: f.Key, Value: f.Value}
		default:
			continue // Load already rejected unknown kinds
		}
		ops = append(ops, op{f.AtUs, e})
	}
	sort.SliceStable(ops, func(i, k int) bool { return ops[i].atUs < ops[k].atUs })
	var lastNs int64
	for _, o := range ops {
		o.e.AtNs = o.atUs * 1000
		if o.e.AtNs > lastNs {
			lastNs = o.e.AtNs
		}
		add(o.e)
	}

	if durNs := spec.DurationUs * 1000; durNs > lastNs {
		add(snap.Entry{AtNs: lastNs, Kind: snap.KindAdvance, ToNs: durNs})
	}
	return cfg, j
}
