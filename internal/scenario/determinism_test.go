package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/snap"
)

func loadSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario specs found")
	}
	specs := make(map[string]Spec, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Load(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		specs[filepath.Base(p)] = spec
	}
	return specs
}

// TestScenariosAreDeterministic runs every shipped drill twice with
// its own seed and requires bit-identical results — assertion
// outcomes, details, and the full timeline log.
func TestScenariosAreDeterministic(t *testing.T) {
	for name, spec := range loadSpecs(t) {
		t.Run(name, func(t *testing.T) {
			first, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("two runs of %s differ:\n first: %+v\nsecond: %+v", name, first, second)
			}
		})
	}
}

// TestScenarioJournalsReplayDeterministically converts every shipped
// drill to a snap journal and runs the divergence checker over it —
// the determinism-regression harness applied to real inputs.
func TestScenarioJournalsReplayDeterministically(t *testing.T) {
	for name, spec := range loadSpecs(t) {
		t.Run(name, func(t *testing.T) {
			cfg, j := ToJournal(spec)
			if err := j.Validate(); err != nil {
				t.Fatalf("converted journal invalid: %v", err)
			}
			div, err := snap.CheckDeterminism(cfg, j)
			if err != nil {
				t.Fatal(err)
			}
			if div != nil {
				t.Fatalf("scenario journal diverges: %v", div)
			}
		})
	}
}
