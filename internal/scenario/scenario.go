// Package scenario runs declarative incident drills against a managed
// host: a JSON spec names a topology preset, the tenants to admit, the
// workloads and faults to inject on a timeline, and the assertions
// that must hold afterwards. Operators use drills to rehearse the
// §3.1/§3.2 incidents (is a silent switch degradation detected within
// X? does the KV tail stay below Y under the antagonist?) and to keep
// them passing as the stack evolves — regression tests for the
// management plane itself.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/monitor"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Spec is the on-disk drill description.
type Spec struct {
	Name       string `json:"name"`
	Preset     string `json:"preset"`
	Seed       int64  `json:"seed"`
	DurationUs int64  `json:"duration_us"`
	// ArbiterMode optionally overrides the arbiter: "strict" or
	// "work-conserving" (the default).
	ArbiterMode string `json:"arbiter_mode,omitempty"`

	// Remedy arms the closed-loop remediation controller for the
	// drill: injected faults become incidents it must heal.
	Remedy *RemedySpec `json:"remedy,omitempty"`

	Tenants   []TenantSpec   `json:"tenants,omitempty"`
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	Faults    []FaultSpec    `json:"faults,omitempty"`
	Asserts   []AssertSpec   `json:"asserts,omitempty"`
}

// RemedySpec configures the drill's remediation controller.
type RemedySpec struct {
	Enabled bool `json:"enabled"`
	// StepIntervalUs is the control-loop cadence on the virtual clock
	// (default 100us, the anomaly probe period).
	StepIntervalUs int64 `json:"step_interval_us,omitempty"`
}

// TenantSpec admits one tenant before the clock starts.
type TenantSpec struct {
	Tenant  string       `json:"tenant"`
	Targets []TargetSpec `json:"targets"`
}

// TargetSpec is one intent target.
type TargetSpec struct {
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	RateGbps float64 `json:"rate_gbps"`
}

// WorkloadSpec starts a workload at a point on the timeline.
type WorkloadSpec struct {
	// Kind: "kv", "ml", "loopback", "scan".
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`
	AtUs   int64  `json:"at_us"`
	// Optional endpoints; defaults follow the workload package.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
}

// FaultSpec injects a fault at a point on the timeline.
type FaultSpec struct {
	// Kind: "degrade", "fail", "restore", "config".
	Kind string `json:"kind"`
	AtUs int64  `json:"at_us"`
	Link string `json:"link,omitempty"`
	// Degradation parameters.
	LossFrac float64 `json:"loss_frac,omitempty"`
	ExtraUs  int64   `json:"extra_us,omitempty"`
	// Config parameters.
	Component string `json:"component,omitempty"`
	Key       string `json:"key,omitempty"`
	Value     string `json:"value,omitempty"`
}

// AssertSpec is one post-run check.
type AssertSpec struct {
	// Kind: "detected_within_us", "no_detection", "top_suspect",
	// "p99_below_us", "p99_above_us", "drift_alert",
	// "tenant_rate_at_least_gbps", "remedy_action_executed",
	// "remediated_within_us".
	Kind string `json:"kind"`
	// WithinUs for detected_within_us (measured from the first fault)
	// and remediated_within_us (the MTTR bound on every incident).
	WithinUs int64 `json:"within_us,omitempty"`
	// Link for top_suspect and remedy_action_executed (optional there:
	// restricts the match to incidents on that link).
	Link string `json:"link,omitempty"`
	// Action for remedy_action_executed: a verb ("rollback",
	// "migrate", ...) or "|"-separated alternatives ("migrate|rollback").
	Action string `json:"action,omitempty"`
	// Tenant + ValueUs for the p99 checks; Tenant + Gbps for rate.
	Tenant  string  `json:"tenant,omitempty"`
	ValueUs float64 `json:"value_us,omitempty"`
	Gbps    float64 `json:"gbps,omitempty"`
}

// Load parses and validates a spec.
func Load(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode: %w", err)
	}
	if s.Name == "" {
		return Spec{}, fmt.Errorf("scenario: needs a name")
	}
	if _, ok := topology.Presets[s.Preset]; !ok {
		return Spec{}, fmt.Errorf("scenario: unknown preset %q", s.Preset)
	}
	if s.DurationUs <= 0 {
		return Spec{}, fmt.Errorf("scenario: duration_us must be positive")
	}
	switch s.ArbiterMode {
	case "", string(arbiter.Strict), string(arbiter.WorkConserving):
	default:
		return Spec{}, fmt.Errorf("scenario: unknown arbiter mode %q", s.ArbiterMode)
	}
	for i, w := range s.Workloads {
		switch w.Kind {
		case "kv", "ml", "loopback", "scan":
		default:
			return Spec{}, fmt.Errorf("scenario: workload %d has unknown kind %q", i, w.Kind)
		}
		if w.Tenant == "" {
			return Spec{}, fmt.Errorf("scenario: workload %d needs a tenant", i)
		}
	}
	for i, f := range s.Faults {
		switch f.Kind {
		case "degrade", "fail", "restore":
			if f.Link == "" {
				return Spec{}, fmt.Errorf("scenario: fault %d needs a link", i)
			}
		case "config":
			if f.Component == "" || f.Key == "" {
				return Spec{}, fmt.Errorf("scenario: fault %d needs component and key", i)
			}
		default:
			return Spec{}, fmt.Errorf("scenario: fault %d has unknown kind %q", i, f.Kind)
		}
	}
	remedyOn := s.Remedy != nil && s.Remedy.Enabled
	for i, a := range s.Asserts {
		switch a.Kind {
		case "detected_within_us", "no_detection", "top_suspect",
			"p99_below_us", "p99_above_us", "drift_alert",
			"tenant_rate_at_least_gbps":
		case "remedy_action_executed", "remediated_within_us":
			if !remedyOn {
				return Spec{}, fmt.Errorf("scenario: assert %d (%s) needs remedy.enabled", i, a.Kind)
			}
			if a.Kind == "remedy_action_executed" && a.Action == "" {
				return Spec{}, fmt.Errorf("scenario: assert %d needs an action", i)
			}
		default:
			return Spec{}, fmt.Errorf("scenario: assert %d has unknown kind %q", i, a.Kind)
		}
	}
	return s, nil
}

// CheckResult is one assertion's outcome.
type CheckResult struct {
	Assert AssertSpec
	Passed bool
	Detail string
}

// Result is a completed drill.
type Result struct {
	Name     string
	Passed   bool
	Checks   []CheckResult
	Timeline []string
}

// Run executes a drill and evaluates its assertions.
func Run(spec Spec) (Result, error) {
	opts := core.DefaultOptions()
	opts.Seed = spec.Seed
	if spec.ArbiterMode != "" {
		opts.Arbiter.Mode = arbiter.Mode(spec.ArbiterMode)
	}
	build := topology.Presets[spec.Preset]
	mgr, err := core.New(build(), opts)
	if err != nil {
		return Result{}, err
	}
	if err := mgr.Start(); err != nil {
		return Result{}, err
	}
	res := Result{Name: spec.Name}
	logf := func(format string, args ...any) {
		res.Timeline = append(res.Timeline,
			fmt.Sprintf("t=%-12v %s", mgr.Engine().Now(), fmt.Sprintf(format, args...)))
	}

	for _, ts := range spec.Tenants {
		targets := make([]intent.Target, len(ts.Targets))
		for i, tg := range ts.Targets {
			targets[i] = intent.Target{
				Src: topology.CompID(tg.Src), Dst: topology.CompID(tg.Dst),
				Rate: topology.Gbps(tg.RateGbps),
			}
		}
		if _, err := mgr.Admit(fabric.TenantID(ts.Tenant), targets); err != nil {
			return Result{}, fmt.Errorf("scenario: admit %q: %w", ts.Tenant, err)
		}
		logf("admitted tenant %s (%d targets)", ts.Tenant, len(targets))
	}

	kvs := make(map[string]*workload.KVClient)
	engine := mgr.Engine()

	// Arm the remediation controller before the timeline starts so the
	// injected faults' trace events are observed with exact timestamps.
	// The loop steps on a fixed virtual cadence via a self-rescheduling
	// tick — the same deterministic clock the faults ride on.
	var ctrl *remedy.Controller
	if spec.Remedy != nil && spec.Remedy.Enabled {
		var err error
		ctrl, err = remedy.New(mgr, remedy.ManagerActuator{Mgr: mgr},
			remedy.Options{Policy: remedy.DefaultPolicy()})
		if err != nil {
			return Result{}, err
		}
		defer ctrl.Close()
		interval := simtime.Duration(spec.Remedy.StepIntervalUs) * simtime.Microsecond
		if interval <= 0 {
			interval = 100 * simtime.Microsecond
		}
		var tick func()
		tick = func() {
			ctrl.Step()
			engine.Schedule(engine.Now().Add(interval), tick)
		}
		engine.Schedule(simtime.Time(interval), tick)
	}

	var startErr error
	for _, w := range spec.Workloads {
		w := w
		engine.Schedule(simtime.Time(w.AtUs)*simtime.Time(simtime.Microsecond), func() {
			if err := startWorkload(mgr, w, kvs); err != nil && startErr == nil {
				startErr = err
				return
			}
			logf("started %s workload for tenant %s", w.Kind, w.Tenant)
		})
	}
	var firstFault simtime.Time = -1
	for _, fs := range spec.Faults {
		fs := fs
		engine.Schedule(simtime.Time(fs.AtUs)*simtime.Time(simtime.Microsecond), func() {
			if err := applyFault(mgr, fs); err != nil && startErr == nil {
				startErr = err
				return
			}
			if firstFault < 0 && fs.Kind != "restore" {
				firstFault = engine.Now()
			}
			logf("fault %s %s%s", fs.Kind, fs.Link, fs.Component)
		})
	}
	mgr.RunFor(simtime.Duration(spec.DurationUs) * simtime.Microsecond)
	if startErr != nil {
		return Result{}, startErr
	}

	// Replay the remediation ledger onto the timeline using the
	// actions' own virtual timestamps.
	if ctrl != nil {
		for _, in := range ctrl.Incidents() {
			for _, ar := range in.Actions {
				line := fmt.Sprintf("t=%-12v remedy %s on %s", ar.At, ar.Action, in.Subject)
				if ar.Err != "" {
					line += " (failed: " + ar.Err + ")"
				}
				res.Timeline = append(res.Timeline, line)
			}
			if d, ok := in.MTTR(); ok {
				res.Timeline = append(res.Timeline,
					fmt.Sprintf("t=%-12v remedy resolved %s (mttr %v)", in.ResolvedAt, in.Subject, d))
			}
		}
	}

	res.Passed = true
	for _, a := range spec.Asserts {
		c := evaluate(mgr, ctrl, a, kvs, firstFault)
		if !c.Passed {
			res.Passed = false
		}
		res.Checks = append(res.Checks, c)
	}
	mgr.Stop()
	return res, nil
}

func startWorkload(mgr *core.Manager, w WorkloadSpec, kvs map[string]*workload.KVClient) error {
	fab := mgr.Fabric()
	tenant := fabric.TenantID(w.Tenant)
	switch w.Kind {
	case "kv":
		cfg := workload.DefaultKVConfig(tenant)
		if w.Src != "" {
			cfg.Client = topology.CompID(w.Src)
		}
		if w.Dst != "" {
			cfg.Server = topology.CompID(w.Dst)
		}
		kv, err := workload.StartKV(fab, cfg)
		if err != nil {
			return err
		}
		kvs[w.Tenant] = kv
		return nil
	case "ml":
		cfg := workload.DefaultMLConfig(tenant)
		if w.Src != "" {
			cfg.Memory = topology.CompID(w.Src)
		}
		if w.Dst != "" {
			cfg.GPU = topology.CompID(w.Dst)
		}
		_, err := workload.StartML(fab, cfg)
		return err
	case "loopback":
		nic, dimm := topology.CompID("nic0"), topology.CompID("socket0.dimm0_0")
		if w.Src != "" {
			nic = topology.CompID(w.Src)
		}
		if w.Dst != "" {
			dimm = topology.CompID(w.Dst)
		}
		_, err := workload.StartLoopback(fab, tenant, nic, dimm)
		return err
	case "scan":
		ssd, dimm := topology.CompID("ssd0"), topology.CompID("socket0.dimm0_0")
		if w.Src != "" {
			ssd = topology.CompID(w.Src)
		}
		if w.Dst != "" {
			dimm = topology.CompID(w.Dst)
		}
		_, err := workload.StartScan(fab, tenant, ssd, dimm, 4<<20)
		return err
	}
	return fmt.Errorf("scenario: unknown workload kind %q", w.Kind)
}

func applyFault(mgr *core.Manager, f FaultSpec) error {
	fab := mgr.Fabric()
	switch f.Kind {
	case "degrade":
		return fab.DegradeLink(topology.LinkID(f.Link), f.LossFrac,
			simtime.Duration(f.ExtraUs)*simtime.Microsecond)
	case "fail":
		return fab.FailLink(topology.LinkID(f.Link))
	case "restore":
		return fab.RestoreLink(topology.LinkID(f.Link))
	case "config":
		c := mgr.Topology().Component(topology.CompID(f.Component))
		if c == nil {
			return fmt.Errorf("scenario: unknown component %q", f.Component)
		}
		c.SetConfig(f.Key, f.Value)
		return nil
	}
	return fmt.Errorf("scenario: unknown fault kind %q", f.Kind)
}

func evaluate(mgr *core.Manager, ctrl *remedy.Controller, a AssertSpec, kvs map[string]*workload.KVClient, firstFault simtime.Time) CheckResult {
	c := CheckResult{Assert: a}
	switch a.Kind {
	case "remedy_action_executed":
		verbs := strings.Split(a.Action, "|")
		for _, in := range ctrl.Incidents() {
			if a.Link != "" && !sameLink(mgr, in.Subject, a.Link) {
				continue
			}
			for _, ar := range in.Actions {
				if ar.Err != "" {
					continue
				}
				for _, v := range verbs {
					if string(ar.Action) == v {
						c.Passed = true
						c.Detail = fmt.Sprintf("%s executed on %s at t=%v", ar.Action, in.Subject, ar.At)
						return c
					}
				}
			}
		}
		c.Detail = fmt.Sprintf("no successful %q action", a.Action)
	case "remediated_within_us":
		bound := simtime.Duration(a.WithinUs) * simtime.Microsecond
		incidents := ctrl.Incidents()
		if len(incidents) == 0 {
			c.Detail = "no incidents opened"
			return c
		}
		var worst simtime.Duration
		for _, in := range incidents {
			d, ok := in.MTTR()
			if !ok {
				c.Detail = fmt.Sprintf("incident %s still open", in.Subject)
				return c
			}
			if d > worst {
				worst = d
			}
		}
		c.Passed = worst <= bound
		c.Detail = fmt.Sprintf("%d incident(s) resolved, worst mttr %v", len(incidents), worst)
	case "detected_within_us":
		dets := mgr.Anomaly().Detections()
		if len(dets) == 0 {
			c.Detail = "no detections"
			return c
		}
		if firstFault < 0 {
			c.Detail = "no fault was injected"
			return c
		}
		lat := dets[0].At.Sub(firstFault)
		c.Passed = lat <= simtime.Duration(a.WithinUs)*simtime.Microsecond
		c.Detail = fmt.Sprintf("detected after %v", lat)
	case "no_detection":
		n := len(mgr.Anomaly().Detections())
		c.Passed = n == 0
		c.Detail = fmt.Sprintf("%d detections", n)
	case "top_suspect":
		dets := mgr.Anomaly().Detections()
		if len(dets) == 0 || len(dets[0].Suspects) == 0 {
			c.Detail = "no suspects"
			return c
		}
		top := dets[0].Suspects[0].Link
		c.Passed = sameLink(mgr, string(top), a.Link)
		c.Detail = fmt.Sprintf("top suspect %s", top)
	case "p99_below_us", "p99_above_us":
		kv, ok := kvs[a.Tenant]
		if !ok {
			c.Detail = fmt.Sprintf("no kv workload for tenant %q", a.Tenant)
			return c
		}
		p99 := kv.Latency().Percentile(99)
		bound := simtime.Duration(a.ValueUs * float64(simtime.Microsecond))
		if a.Kind == "p99_below_us" {
			c.Passed = p99 <= bound
		} else {
			c.Passed = p99 > bound
		}
		c.Detail = fmt.Sprintf("p99 = %v", p99)
	case "drift_alert":
		n := len(mgr.Monitor().AlertsOfKind(monitor.AlertConfigDrift))
		c.Passed = n > 0
		c.Detail = fmt.Sprintf("%d drift alerts", n)
	case "tenant_rate_at_least_gbps":
		usage := mgr.Fabric().TenantUsage(fabric.TenantID(a.Tenant))
		var max topology.Rate
		for _, r := range usage {
			if r > max {
				max = r
			}
		}
		c.Passed = max >= topology.Gbps(a.Gbps)
		c.Detail = fmt.Sprintf("peak class rate %v", max)
	default:
		c.Detail = "unknown assert"
	}
	return c
}

// sameLink reports whether got names the same physical link as want,
// in either direction.
func sameLink(mgr *core.Manager, got, want string) bool {
	if got == want {
		return true
	}
	l := mgr.Topology().Link(topology.LinkID(want))
	return l != nil && topology.LinkID(got) == l.Reverse
}
