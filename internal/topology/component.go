// Package topology models the intra-host network of a commodity server:
// the heterogeneous components (CPU sockets, memory controllers, DIMMs,
// last-level caches, PCIe root ports and switches, and endpoint devices
// such as GPUs, NICs and NVMe SSDs) and the fabric links that connect
// them (inter-socket connects, intra-socket connects, PCIe upstream and
// downstream links, and the inter-host network link).
//
// The five link classes and their capacity/latency envelopes follow
// Figure 1 of "Towards a Manageable Intra-Host Network" (HotOS '23).
package topology

import "fmt"

// Kind classifies a component of the intra-host network.
type Kind int

const (
	// KindCPU is a CPU socket's compute complex (cores + on-die mesh).
	KindCPU Kind = iota
	// KindLLC is a socket's last-level cache, the DDIO landing zone.
	KindLLC
	// KindMemCtrl is an integrated memory controller.
	KindMemCtrl
	// KindDIMM is a DRAM module behind a memory controller.
	KindDIMM
	// KindRootPort is a PCIe root port on the root complex.
	KindRootPort
	// KindPCIeSwitch is a multi-port PCIe switch.
	KindPCIeSwitch
	// KindGPU is a GPU accelerator endpoint.
	KindGPU
	// KindNIC is a network interface card endpoint.
	KindNIC
	// KindSSD is an NVMe storage endpoint.
	KindSSD
	// KindFPGA is an FPGA accelerator endpoint.
	KindFPGA
	// KindCXLMem is a CXL memory expander: device memory exposed to
	// the host as a far NUMA node over a cache-coherent link (§2 of
	// the paper: "CXL exposes memory in devices as remote memory in a
	// NUMA system ... with a latency of ~150ns").
	KindCXLMem
	// KindExternal stands for the remote end of the inter-host network,
	// so end-to-end paths can traverse link class (5).
	KindExternal
)

var kindNames = map[Kind]string{
	KindCPU:        "cpu",
	KindLLC:        "llc",
	KindMemCtrl:    "memctrl",
	KindDIMM:       "dimm",
	KindRootPort:   "rootport",
	KindPCIeSwitch: "pcieswitch",
	KindGPU:        "gpu",
	KindNIC:        "nic",
	KindSSD:        "ssd",
	KindFPGA:       "fpga",
	KindCXLMem:     "cxlmem",
	KindExternal:   "external",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsEndpoint reports whether the kind is a device that originates or
// terminates traffic (as opposed to pure fabric: switches, root ports,
// caches, memory controllers).
func (k Kind) IsEndpoint() bool {
	switch k {
	case KindCPU, KindDIMM, KindGPU, KindNIC, KindSSD, KindFPGA, KindCXLMem, KindExternal:
		return true
	}
	return false
}

// CanForward reports whether traffic may transit the kind en route to
// somewhere else. Fabric elements forward; CPUs forward (the
// inter-socket connect terminates on them); NICs forward (they bridge
// the inter-host and intra-host networks). Leaf devices — GPUs, SSDs,
// FPGAs, DIMMs — and the external node never relay traffic, so no
// route may hairpin through them.
func (k Kind) CanForward() bool {
	switch k {
	case KindGPU, KindSSD, KindFPGA, KindDIMM, KindCXLMem, KindExternal:
		return false
	}
	return true
}

// CompID names a component uniquely within a topology, e.g. "gpu0",
// "socket1.llc", "pcieswitch0".
type CompID string

// Component is a node in the intra-host network graph.
type Component struct {
	ID     CompID
	Kind   Kind
	Socket int // owning socket index; -1 for external

	// Config holds the component's manageability-relevant settings
	// (the dashed "Configuration" box of Figure 1): DDIO on/off, IOMMU
	// mode, interrupt moderation, PCIe max payload size, and so on.
	// The monitor watches this registry for drift.
	Config map[string]string
}

// SetConfig sets one configuration key, allocating the map if needed.
func (c *Component) SetConfig(key, value string) {
	if c.Config == nil {
		c.Config = make(map[string]string)
	}
	c.Config[key] = value
}

// ConfigValue returns the configuration value for key and whether it
// is set.
func (c *Component) ConfigValue(key string) (string, bool) {
	v, ok := c.Config[key]
	return v, ok
}

func (c *Component) String() string {
	return fmt.Sprintf("%s(%s, socket %d)", c.ID, c.Kind, c.Socket)
}

// Well-known configuration keys used across the repository.
const (
	// ConfigDDIO is "on" when DDIO direct-to-LLC writes are enabled
	// for I/O traffic toward this socket.
	ConfigDDIO = "ddio"
	// ConfigIOMMU is the IOMMU translation mode: "off", "passthrough",
	// or "translate".
	ConfigIOMMU = "iommu"
	// ConfigMaxPayload is the PCIe maximum payload size in bytes.
	ConfigMaxPayload = "pcie.max_payload"
	// ConfigRelaxedOrdering is "on" when PCIe relaxed ordering is
	// permitted on this port.
	ConfigRelaxedOrdering = "pcie.relaxed_ordering"
	// ConfigIntModeration is the interrupt moderation period in
	// microseconds ("0" disables moderation).
	ConfigIntModeration = "int_moderation_us"
	// ConfigNUMA is the NUMA binding policy for a device: "local",
	// "remote", or "interleave".
	ConfigNUMA = "numa"
)
