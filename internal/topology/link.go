package topology

import (
	"fmt"

	"repro/internal/simtime"
)

// LinkClass is one of the five intra-host/inter-host link classes from
// Figure 1 of the paper.
type LinkClass int

const (
	// ClassInterSocket is link (1): the inter-socket connect (Intel
	// UPI/QPI, AMD Infinity Fabric). 20-72 GB/s, 130-220 ns.
	ClassInterSocket LinkClass = iota
	// ClassIntraSocket is link (2): intra-socket connects — the on-die
	// mesh, memory bus, and LLC paths. 100-200 GB/s, 2-110 ns.
	ClassIntraSocket
	// ClassPCIeUp is link (3): a PCIe switch upstream link (x16).
	// ~256 Gb/s, 30-120 ns.
	ClassPCIeUp
	// ClassPCIeDown is link (4): a PCIe switch downstream link (x16).
	// ~256 Gb/s, 30-120 ns.
	ClassPCIeDown
	// ClassInterHost is link (5): the inter-host network (Ethernet /
	// InfiniBand). ~200 Gb/s, <2 us.
	ClassInterHost
	// ClassCXL is a Compute Express Link connection: cache-coherent
	// device-to-host-memory access. Not part of Figure 1's table; §2
	// cites ~150 ns device-to-host-memory latency, and CXL 2.0 x16
	// delivers PCIe-5.0-class bandwidth.
	ClassCXL
)

var classNames = map[LinkClass]string{
	ClassInterSocket: "inter-socket",
	ClassIntraSocket: "intra-socket",
	ClassPCIeUp:      "pcie-up",
	ClassPCIeDown:    "pcie-down",
	ClassInterHost:   "inter-host",
	ClassCXL:         "cxl",
}

func (c LinkClass) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// FigureRef returns the paper's Figure 1 item number for the class,
// 1 through 5.
func (c LinkClass) FigureRef() int { return int(c) + 1 }

// Envelope is an order-of-magnitude capacity/latency range for a link
// class, as published in Figure 1.
type Envelope struct {
	MinCapacity, MaxCapacity Rate             // bytes/second
	MinLatency, MaxLatency   simtime.Duration // one-way base latency
}

// Contains reports whether a measured (capacity, latency) point falls
// inside the envelope.
func (e Envelope) Contains(cap Rate, lat simtime.Duration) bool {
	return cap >= e.MinCapacity && cap <= e.MaxCapacity &&
		lat >= e.MinLatency && lat <= e.MaxLatency
}

// PaperEnvelope returns Figure 1's published range for a link class.
func PaperEnvelope(c LinkClass) Envelope {
	switch c {
	case ClassInterSocket:
		return Envelope{GBps(20), GBps(72), 130, 220}
	case ClassIntraSocket:
		return Envelope{GBps(100), GBps(200), 2, 110}
	case ClassPCIeUp, ClassPCIeDown:
		// "~256 Gbps": accept a generous neighborhood of the nominal
		// value (PCIe 4.0 x16 raw 256 Gb/s, ~28-32 GB/s effective).
		return Envelope{Gbps(180), Gbps(290), 30, 120}
	case ClassInterHost:
		// "~200 Gbps", latency "<2us".
		return Envelope{Gbps(100), Gbps(220), 200, 2 * simtime.Microsecond}
	case ClassCXL:
		// Not in Figure 1; envelope from §2's "~150ns from device to
		// host memory" and CXL 2.0 x16 link rates.
		return Envelope{GBps(25), GBps(80), 50, 250}
	}
	panic(fmt.Sprintf("topology: unknown link class %v", c))
}

// LinkID names one direction of a link, e.g. "nic0->pcieswitch0".
type LinkID string

// Link is one direction of a fabric connection between two components.
// Links are unidirectional so that full-duplex fabrics (PCIe, UPI) are
// modeled with independent capacity per direction; AddLink creates both
// directions.
type Link struct {
	ID   LinkID
	From CompID
	To   CompID
	// Class determines which Figure 1 envelope the link belongs to.
	Class LinkClass
	// Capacity is the maximum data rate in bytes per second.
	Capacity Rate
	// BaseLatency is the uncongested one-way traversal latency,
	// including the processing delay of the downstream component
	// (e.g. PCIe switch forwarding).
	BaseLatency simtime.Duration

	// Reverse is the ID of the opposite-direction link.
	Reverse LinkID
}

func (l *Link) String() string {
	return fmt.Sprintf("%s [%s, %s, %s]", l.ID, l.Class, l.Capacity, l.BaseLatency)
}

// linkIDFor builds the canonical directed-link identifier.
func linkIDFor(from, to CompID) LinkID {
	return LinkID(string(from) + "->" + string(to))
}
