package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/simtime"
)

// jsonTopology is the on-disk host description format, so operators
// can manage hosts beyond the built-in presets (every data center has
// more SKUs than any preset list).
type jsonTopology struct {
	Name       string          `json:"name"`
	Components []jsonComponent `json:"components"`
	Links      []jsonLink      `json:"links"`
}

type jsonComponent struct {
	ID     string            `json:"id"`
	Kind   string            `json:"kind"`
	Socket int               `json:"socket"`
	Config map[string]string `json:"config,omitempty"`
}

type jsonLink struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	Class     string  `json:"class"`
	GBps      float64 `json:"gbps"`
	LatencyNs int64   `json:"latency_ns"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

var classByName = func() map[string]LinkClass {
	m := make(map[string]LinkClass, len(classNames))
	for c, n := range classNames {
		m[n] = c
	}
	return m
}()

// MarshalJSON encodes the topology in the host description format.
// Bidirectional link pairs are emitted once.
func (t *Topology) MarshalJSON() ([]byte, error) {
	out := jsonTopology{Name: t.Name}
	for _, c := range t.Components() {
		out.Components = append(out.Components, jsonComponent{
			ID: string(c.ID), Kind: c.Kind.String(), Socket: c.Socket, Config: c.Config,
		})
	}
	done := make(map[LinkID]bool)
	var links []*Link
	for _, l := range t.Links() {
		if done[l.ID] || done[l.Reverse] {
			continue
		}
		done[l.ID], done[l.Reverse] = true, true
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
	for _, l := range links {
		out.Links = append(out.Links, jsonLink{
			A: string(l.From), B: string(l.To), Class: l.Class.String(),
			GBps: l.Capacity.GBpsValue(), LatencyNs: int64(l.BaseLatency),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// FromJSON decodes a host description and validates the resulting
// topology.
func FromJSON(r io.Reader) (*Topology, error) {
	var in jsonTopology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	if in.Name == "" {
		return nil, fmt.Errorf("topology: host description needs a name")
	}
	t := New(in.Name)
	for _, c := range in.Components {
		kind, ok := kindByName[c.Kind]
		if !ok {
			return nil, fmt.Errorf("topology: component %q has unknown kind %q", c.ID, c.Kind)
		}
		comp, err := t.AddComponent(CompID(c.ID), kind, c.Socket)
		if err != nil {
			return nil, err
		}
		for k, v := range c.Config {
			comp.SetConfig(k, v)
		}
	}
	for _, l := range in.Links {
		class, ok := classByName[l.Class]
		if !ok {
			return nil, fmt.Errorf("topology: link %s-%s has unknown class %q", l.A, l.B, l.Class)
		}
		if _, _, err := t.AddLink(LinkSpec{
			A: CompID(l.A), B: CompID(l.B), Class: class,
			Capacity: GBps(l.GBps), BaseLatency: simtime.Duration(l.LatencyNs),
		}); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
