package topology

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Path is an ordered sequence of directed links from a source component
// to a destination component.
type Path struct {
	Links []*Link
}

// Src returns the path's source component, or "" for an empty path.
func (p Path) Src() CompID {
	if len(p.Links) == 0 {
		return ""
	}
	return p.Links[0].From
}

// Dst returns the path's destination component, or "" for an empty path.
func (p Path) Dst() CompID {
	if len(p.Links) == 0 {
		return ""
	}
	return p.Links[len(p.Links)-1].To
}

// Hops returns the number of links.
func (p Path) Hops() int { return len(p.Links) }

// BaseLatency returns the sum of uncongested link latencies.
func (p Path) BaseLatency() simtime.Duration {
	var sum simtime.Duration
	for _, l := range p.Links {
		sum += l.BaseLatency
	}
	return sum
}

// BottleneckCapacity returns the minimum link capacity along the path,
// or 0 for an empty path.
func (p Path) BottleneckCapacity() Rate {
	if len(p.Links) == 0 {
		return 0
	}
	min := p.Links[0].Capacity
	for _, l := range p.Links[1:] {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// Nodes returns the component IDs visited, source first.
func (p Path) Nodes() []CompID {
	if len(p.Links) == 0 {
		return nil
	}
	out := make([]CompID, 0, len(p.Links)+1)
	out = append(out, p.Links[0].From)
	for _, l := range p.Links {
		out = append(out, l.To)
	}
	return out
}

// LinkIDs returns the directed link IDs in order.
func (p Path) LinkIDs() []LinkID {
	out := make([]LinkID, len(p.Links))
	for i, l := range p.Links {
		out[i] = l.ID
	}
	return out
}

// HasLink reports whether the path traverses the given directed link.
func (p Path) HasLink(id LinkID) bool {
	for _, l := range p.Links {
		if l.ID == id {
			return true
		}
	}
	return false
}

func (p Path) String() string {
	nodes := p.Nodes()
	if len(nodes) == 0 {
		return "<empty path>"
	}
	s := string(nodes[0])
	for _, n := range nodes[1:] {
		s += " -> " + string(n)
	}
	return s
}

// Classes returns the set of link classes the path traverses, in
// first-traversal order.
func (p Path) Classes() []LinkClass {
	var out []LinkClass
	seen := make(map[LinkClass]bool)
	for _, l := range p.Links {
		if !seen[l.Class] {
			seen[l.Class] = true
			out = append(out, l.Class)
		}
	}
	return out
}

// ShortestPath returns the minimum-latency path from src to dst using
// Dijkstra over link base latencies (ties broken by hop count, then by
// lexicographic link ID for determinism). It returns an error when no
// path exists.
func (t *Topology) ShortestPath(src, dst CompID) (Path, error) {
	return t.shortestPathAvoiding(src, dst, nil, nil)
}

// shortestPathAvoiding runs Dijkstra while treating the given links and
// nodes as removed. Either set may be nil.
func (t *Topology) shortestPathAvoiding(src, dst CompID, banLinks map[LinkID]bool, banNodes map[CompID]bool) (Path, error) {
	if t.components[src] == nil {
		return Path{}, fmt.Errorf("topology: unknown source %q", src)
	}
	if t.components[dst] == nil {
		return Path{}, fmt.Errorf("topology: unknown destination %q", dst)
	}
	if src == dst {
		return Path{}, fmt.Errorf("topology: source equals destination %q", src)
	}
	type state struct {
		lat  simtime.Duration
		hops int
		via  *Link
	}
	dist := map[CompID]state{src: {}}
	visited := make(map[CompID]bool)
	for {
		// Select the unvisited node with the smallest (lat, hops, id).
		var cur CompID
		best := state{lat: 1<<62 - 1}
		found := false
		for id, st := range dist {
			if visited[id] {
				continue
			}
			if !found || st.lat < best.lat ||
				(st.lat == best.lat && st.hops < best.hops) ||
				(st.lat == best.lat && st.hops == best.hops && id < cur) {
				cur, best, found = id, st, true
			}
		}
		if !found {
			return Path{}, fmt.Errorf("topology: no path %s -> %s", src, dst)
		}
		if cur == dst {
			break
		}
		visited[cur] = true
		// Leaf devices terminate traffic; only the source itself may
		// originate through one.
		if cur != src && !t.components[cur].Kind.CanForward() {
			continue
		}
		out := append([]*Link(nil), t.out[cur]...)
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		for _, l := range out {
			if banLinks[l.ID] || banNodes[l.To] || visited[l.To] {
				continue
			}
			cand := state{lat: best.lat + l.BaseLatency, hops: best.hops + 1, via: l}
			old, ok := dist[l.To]
			if !ok || cand.lat < old.lat || (cand.lat == old.lat && cand.hops < old.hops) {
				dist[l.To] = cand
			}
		}
	}
	// Reconstruct.
	var rev []*Link
	for cur := dst; cur != src; {
		st := dist[cur]
		if st.via == nil {
			return Path{}, fmt.Errorf("topology: broken predecessor chain at %q", cur)
		}
		rev = append(rev, st.via)
		cur = st.via.From
	}
	links := make([]*Link, len(rev))
	for i, l := range rev {
		links[len(rev)-1-i] = l
	}
	return Path{Links: links}, nil
}

// KShortestPaths returns up to k loop-free minimum-latency paths from
// src to dst in increasing latency order, using Yen's algorithm. It is
// the candidate-set generator for the topology-aware scheduler.
func (t *Topology) KShortestPaths(src, dst CompID, k int) ([]Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("topology: k must be positive, got %d", k)
	}
	first, err := t.ShortestPath(src, dst)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes()
		for i := 0; i < prev.Hops(); i++ {
			spurNode := prevNodes[i]
			rootLinks := prev.Links[:i]
			banLinks := make(map[LinkID]bool)
			for _, p := range paths {
				if sharesRoot(p, rootLinks) && p.Hops() > i {
					banLinks[p.Links[i].ID] = true
				}
			}
			banNodes := make(map[CompID]bool)
			for _, n := range prevNodes[:i] {
				banNodes[n] = true
			}
			spur, err := t.shortestPathAvoiding(spurNode, dst, banLinks, banNodes)
			if err != nil {
				continue
			}
			total := Path{Links: append(append([]*Link(nil), rootLinks...), spur.Links...)}
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool {
			li, lj := candidates[i].BaseLatency(), candidates[j].BaseLatency()
			if li != lj {
				return li < lj
			}
			if candidates[i].Hops() != candidates[j].Hops() {
				return candidates[i].Hops() < candidates[j].Hops()
			}
			return candidates[i].String() < candidates[j].String()
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

func sharesRoot(p Path, root []*Link) bool {
	if p.Hops() < len(root) {
		return false
	}
	for i, l := range root {
		if p.Links[i].ID != l.ID {
			return false
		}
	}
	return true
}

func containsPath(paths []Path, p Path) bool {
	for _, q := range paths {
		if q.Hops() != p.Hops() {
			continue
		}
		same := true
		for i := range q.Links {
			if q.Links[i].ID != p.Links[i].ID {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
