package topology

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Topology is the complete intra-host network graph of one server:
// components (nodes) and directed links (edges). A Topology is built
// once and treated as immutable by the rest of the system; run-time
// state (flow rates, failures, counters) lives in the fabric simulator.
type Topology struct {
	// Name identifies the preset or host model, e.g. "two-socket".
	Name string

	components map[CompID]*Component
	links      map[LinkID]*Link
	out        map[CompID][]*Link // outgoing adjacency, insertion order
	in         map[CompID][]*Link
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{
		Name:       name,
		components: make(map[CompID]*Component),
		links:      make(map[LinkID]*Link),
		out:        make(map[CompID][]*Link),
		in:         make(map[CompID][]*Link),
	}
}

// AddComponent adds a node. It returns the component for further
// configuration, or an error on duplicate ID.
func (t *Topology) AddComponent(id CompID, kind Kind, socket int) (*Component, error) {
	if id == "" {
		return nil, fmt.Errorf("topology: empty component id")
	}
	if _, ok := t.components[id]; ok {
		return nil, fmt.Errorf("topology: duplicate component %q", id)
	}
	c := &Component{ID: id, Kind: kind, Socket: socket}
	t.components[id] = c
	return c, nil
}

// MustAddComponent is AddComponent that panics on error; used by
// presets where IDs are statically known to be unique.
func (t *Topology) MustAddComponent(id CompID, kind Kind, socket int) *Component {
	c, err := t.AddComponent(id, kind, socket)
	if err != nil {
		panic(err)
	}
	return c
}

// LinkSpec describes one bidirectional fabric connection to add.
type LinkSpec struct {
	A, B        CompID
	Class       LinkClass
	Capacity    Rate             // per direction
	BaseLatency simtime.Duration // per direction
}

// AddLink adds a full-duplex connection as two directed links (A->B and
// B->A), each with the spec's capacity and latency. It returns the two
// link IDs.
func (t *Topology) AddLink(spec LinkSpec) (fwd, rev LinkID, err error) {
	if _, ok := t.components[spec.A]; !ok {
		return "", "", fmt.Errorf("topology: link endpoint %q not found", spec.A)
	}
	if _, ok := t.components[spec.B]; !ok {
		return "", "", fmt.Errorf("topology: link endpoint %q not found", spec.B)
	}
	if spec.A == spec.B {
		return "", "", fmt.Errorf("topology: self-link on %q", spec.A)
	}
	if spec.Capacity <= 0 {
		return "", "", fmt.Errorf("topology: non-positive capacity on %s-%s", spec.A, spec.B)
	}
	if spec.BaseLatency < 0 {
		return "", "", fmt.Errorf("topology: negative latency on %s-%s", spec.A, spec.B)
	}
	fwd, rev = linkIDFor(spec.A, spec.B), linkIDFor(spec.B, spec.A)
	if _, ok := t.links[fwd]; ok {
		return "", "", fmt.Errorf("topology: duplicate link %s", fwd)
	}
	f := &Link{ID: fwd, From: spec.A, To: spec.B, Class: spec.Class,
		Capacity: spec.Capacity, BaseLatency: spec.BaseLatency, Reverse: rev}
	r := &Link{ID: rev, From: spec.B, To: spec.A, Class: spec.Class,
		Capacity: spec.Capacity, BaseLatency: spec.BaseLatency, Reverse: fwd}
	t.links[fwd], t.links[rev] = f, r
	t.out[spec.A] = append(t.out[spec.A], f)
	t.out[spec.B] = append(t.out[spec.B], r)
	t.in[spec.B] = append(t.in[spec.B], f)
	t.in[spec.A] = append(t.in[spec.A], r)
	return fwd, rev, nil
}

// MustAddLink is AddLink that panics on error.
func (t *Topology) MustAddLink(spec LinkSpec) (fwd, rev LinkID) {
	fwd, rev, err := t.AddLink(spec)
	if err != nil {
		panic(err)
	}
	return fwd, rev
}

// Component returns the component with the given ID, or nil.
func (t *Topology) Component(id CompID) *Component { return t.components[id] }

// Link returns the directed link with the given ID, or nil.
func (t *Topology) Link(id LinkID) *Link { return t.links[id] }

// Outgoing returns the outgoing links of a component in insertion order.
// The returned slice must not be modified.
func (t *Topology) Outgoing(id CompID) []*Link { return t.out[id] }

// Incoming returns the incoming links of a component in insertion order.
func (t *Topology) Incoming(id CompID) []*Link { return t.in[id] }

// Components returns all components sorted by ID for deterministic
// iteration.
func (t *Topology) Components() []*Component {
	out := make([]*Component, 0, len(t.components))
	for _, c := range t.components {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns all directed links sorted by ID.
func (t *Topology) Links() []*Link {
	out := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ComponentsOfKind returns all components of kind k, sorted by ID.
func (t *Topology) ComponentsOfKind(k Kind) []*Component {
	var out []*Component
	for _, c := range t.Components() {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// Endpoints returns all traffic-originating components, sorted by ID.
func (t *Topology) Endpoints() []*Component {
	var out []*Component
	for _, c := range t.Components() {
		if c.Kind.IsEndpoint() {
			out = append(out, c)
		}
	}
	return out
}

// NumComponents returns the node count.
func (t *Topology) NumComponents() int { return len(t.components) }

// NumLinks returns the directed-edge count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Validate checks structural invariants: at least one component, all
// links well-formed with consistent reverse pointers, and the
// undirected graph connected. Figure 1 envelope conformance is checked
// by experiment E1 against measured behaviour, not here.
func (t *Topology) Validate() error {
	if len(t.components) == 0 {
		return fmt.Errorf("topology %q: no components", t.Name)
	}
	for id, l := range t.links {
		if l.ID != id {
			return fmt.Errorf("topology %q: link map key %q != link ID %q", t.Name, id, l.ID)
		}
		rev, ok := t.links[l.Reverse]
		if !ok {
			return fmt.Errorf("topology %q: link %s missing reverse %s", t.Name, l.ID, l.Reverse)
		}
		if rev.From != l.To || rev.To != l.From {
			return fmt.Errorf("topology %q: link %s reverse mismatch", t.Name, l.ID)
		}
	}
	// Connectivity via BFS over undirected edges.
	var start CompID
	for id := range t.components {
		start = id
		break
	}
	seen := map[CompID]bool{start: true}
	queue := []CompID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range t.out[cur] {
			if !seen[l.To] {
				seen[l.To] = true
				queue = append(queue, l.To)
			}
		}
		for _, l := range t.in[cur] {
			if !seen[l.From] {
				seen[l.From] = true
				queue = append(queue, l.From)
			}
		}
	}
	if len(seen) != len(t.components) {
		return fmt.Errorf("topology %q: graph not connected (%d of %d reachable)",
			t.Name, len(seen), len(t.components))
	}
	return nil
}

// Clone returns a deep copy of the topology. Used by vnet to derive
// per-tenant virtual views without aliasing the physical graph.
func (t *Topology) Clone() *Topology {
	nt := New(t.Name)
	for _, c := range t.Components() {
		nc := nt.MustAddComponent(c.ID, c.Kind, c.Socket)
		for k, v := range c.Config {
			nc.SetConfig(k, v)
		}
	}
	done := make(map[LinkID]bool)
	for _, l := range t.Links() {
		if done[l.ID] || done[l.Reverse] {
			continue
		}
		done[l.ID], done[l.Reverse] = true, true
		nt.MustAddLink(LinkSpec{A: l.From, B: l.To, Class: l.Class,
			Capacity: l.Capacity, BaseLatency: l.BaseLatency})
	}
	// Preserve any asymmetric capacities set after construction.
	for id, l := range t.links {
		nl := nt.links[id]
		nl.Capacity = l.Capacity
		nl.BaseLatency = l.BaseLatency
	}
	return nt
}
