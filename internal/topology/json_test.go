package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTripPresets(t *testing.T) {
	for name, build := range Presets {
		orig := build()
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got, err := FromJSON(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Name != orig.Name {
			t.Fatalf("%s: name %q", name, got.Name)
		}
		if got.NumComponents() != orig.NumComponents() || got.NumLinks() != orig.NumLinks() {
			t.Fatalf("%s: size mismatch %d/%d vs %d/%d", name,
				got.NumComponents(), got.NumLinks(), orig.NumComponents(), orig.NumLinks())
		}
		for _, l := range orig.Links() {
			gl := got.Link(l.ID)
			if gl == nil {
				t.Fatalf("%s: link %s lost", name, l.ID)
			}
			if gl.Class != l.Class || gl.Capacity != l.Capacity || gl.BaseLatency != l.BaseLatency {
				t.Fatalf("%s: link %s changed: %+v vs %+v", name, l.ID, gl, l)
			}
		}
		for _, c := range orig.Components() {
			gc := got.Component(c.ID)
			if gc == nil || gc.Kind != c.Kind || gc.Socket != c.Socket {
				t.Fatalf("%s: component %s changed", name, c.ID)
			}
			for k, v := range c.Config {
				if gv, ok := gc.ConfigValue(k); !ok || gv != v {
					t.Fatalf("%s: %s config %s lost", name, c.ID, k)
				}
			}
		}
	}
}

func TestFromJSONCustomHost(t *testing.T) {
	src := `{
	  "name": "lab-box",
	  "components": [
	    {"id": "cpu0", "kind": "cpu", "socket": 0},
	    {"id": "socket0.llc", "kind": "llc", "socket": 0, "config": {"ddio": "on"}},
	    {"id": "socket0.memctrl0", "kind": "memctrl", "socket": 0},
	    {"id": "socket0.dimm0_0", "kind": "dimm", "socket": 0},
	    {"id": "fpga0", "kind": "fpga", "socket": 0},
	    {"id": "socket0.rootport0", "kind": "rootport", "socket": 0}
	  ],
	  "links": [
	    {"a": "cpu0", "b": "socket0.llc", "class": "intra-socket", "gbps": 150, "latency_ns": 8},
	    {"a": "socket0.llc", "b": "socket0.memctrl0", "class": "intra-socket", "gbps": 110, "latency_ns": 20},
	    {"a": "socket0.memctrl0", "b": "socket0.dimm0_0", "class": "intra-socket", "gbps": 55, "latency_ns": 45},
	    {"a": "socket0.rootport0", "b": "socket0.llc", "class": "intra-socket", "gbps": 100, "latency_ns": 25},
	    {"a": "socket0.rootport0", "b": "fpga0", "class": "pcie-down", "gbps": 32, "latency_ns": 70}
	  ]
	}`
	topo, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "lab-box" || topo.NumComponents() != 6 || topo.NumLinks() != 10 {
		t.Fatalf("custom host: %s %d/%d", topo.Name, topo.NumComponents(), topo.NumLinks())
	}
	if v, _ := topo.Component("socket0.llc").ConfigValue(ConfigDDIO); v != "on" {
		t.Fatal("config lost")
	}
	if _, err := topo.ShortestPath("fpga0", "socket0.dimm0_0"); err != nil {
		t.Fatalf("custom host not routable: %v", err)
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", `{{{`},
		{"no name", `{"components":[{"id":"a","kind":"cpu","socket":0}],"links":[]}`},
		{"unknown kind", `{"name":"x","components":[{"id":"a","kind":"quantum","socket":0}]}`},
		{"unknown class", `{"name":"x","components":[{"id":"a","kind":"cpu","socket":0},{"id":"b","kind":"llc","socket":0}],"links":[{"a":"a","b":"b","class":"warp","gbps":1,"latency_ns":1}]}`},
		{"bad link", `{"name":"x","components":[{"id":"a","kind":"cpu","socket":0}],"links":[{"a":"a","b":"zz","class":"intra-socket","gbps":1,"latency_ns":1}]}`},
		{"disconnected", `{"name":"x","components":[{"id":"a","kind":"cpu","socket":0},{"id":"b","kind":"llc","socket":0}],"links":[]}`},
		{"unknown field", `{"name":"x","bogus":1,"components":[],"links":[]}`},
	}
	for _, c := range cases {
		if _, err := FromJSON(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCXLExpandedHost(t *testing.T) {
	topo := CXLExpandedHost()
	cxl := topo.Component("cxlmem0")
	if cxl == nil || cxl.Kind != KindCXLMem || cxl.Socket != 0 {
		t.Fatalf("cxlmem0: %+v", cxl)
	}
	p, err := topo.ShortestPath("cpu0", "cxlmem0")
	if err != nil {
		t.Fatal(err)
	}
	// The §2 figure: ~150ns from CPU to device memory.
	if p.BaseLatency() != 150 {
		t.Fatalf("cpu->cxl latency %v, want 150ns", p.BaseLatency())
	}
	// CXL memory must be closer than remote-socket DRAM and much
	// closer than a PCIe hop.
	remote, _ := topo.ShortestPath("cpu0", "socket1.dimm0_0")
	if p.BaseLatency() >= remote.BaseLatency() {
		t.Fatalf("cxl %v not below remote DRAM %v", p.BaseLatency(), remote.BaseLatency())
	}
	// No transit through the expander.
	if _, err := topo.ShortestPath("gpu0", "cxlmem0"); err != nil {
		t.Fatalf("gpu -> cxl unroutable: %v", err)
	}
	env := PaperEnvelope(ClassCXL)
	for _, l := range topo.Links() {
		if l.Class == ClassCXL && !env.Contains(l.Capacity, l.BaseLatency) {
			t.Fatalf("cxl link %s outside envelope", l.ID)
		}
	}
}
