package topology

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Preset capacities and latencies. All values sit inside the Figure 1
// envelopes; they correspond to a PCIe 4.0, Cascade-Lake/EPYC-class
// server with 200 Gb/s NICs.
const (
	meshLatency    = 5 * simtime.Nanosecond   // CPU <-> LLC on-die mesh hop
	llcMemLatency  = 15 * simtime.Nanosecond  // LLC <-> memory controller
	dramLatency    = 45 * simtime.Nanosecond  // memory controller <-> DIMM
	iioLatency     = 25 * simtime.Nanosecond  // root port <-> LLC (IIO block)
	upiLatency     = 150 * simtime.Nanosecond // socket <-> socket
	pcieUpLatency  = 75 * simtime.Nanosecond  // root port <-> switch
	pcieDnLatency  = 75 * simtime.Nanosecond  // switch <-> device
	rpDirectLat    = 60 * simtime.Nanosecond  // root port <-> device (no switch)
	netHopLatency  = 1000 * simtime.Nanosecond
	meshCapacity   = 180e9 // B/s, CPU <-> LLC
	llcMemCapacity = 120e9 // B/s, LLC <-> memory controller
	dimmCapacity   = 60e9  // B/s per DIMM channel pair
	iioCapacity    = 110e9 // B/s, root port into the mesh
	upiCapacity    = 40e9  // B/s per direction
	pcieCapacity   = 32e9  // B/s, x16 PCIe 4.0 (256 Gb/s)
	netCapacity    = 25e9  // B/s, 200 Gb/s NIC
)

// socketSpec controls how buildSocket fleshes out one CPU socket.
type socketSpec struct {
	memCtrls     int
	dimmsPerCtrl int
	rootPorts    int
}

// buildSocket adds a socket's compute/memory complex: cpu, llc,
// memory controllers with DIMMs, and root ports hanging off the LLC.
func buildSocket(t *Topology, socket int, spec socketSpec) {
	cpu := CompID(fmt.Sprintf("cpu%d", socket))
	llc := CompID(fmt.Sprintf("socket%d.llc", socket))
	t.MustAddComponent(cpu, KindCPU, socket)
	c := t.MustAddComponent(llc, KindLLC, socket)
	c.SetConfig(ConfigDDIO, "on")
	t.MustAddLink(LinkSpec{A: cpu, B: llc, Class: ClassIntraSocket,
		Capacity: meshCapacity, BaseLatency: meshLatency})
	for m := 0; m < spec.memCtrls; m++ {
		mc := CompID(fmt.Sprintf("socket%d.memctrl%d", socket, m))
		t.MustAddComponent(mc, KindMemCtrl, socket)
		t.MustAddLink(LinkSpec{A: llc, B: mc, Class: ClassIntraSocket,
			Capacity: llcMemCapacity, BaseLatency: llcMemLatency})
		for d := 0; d < spec.dimmsPerCtrl; d++ {
			dimm := CompID(fmt.Sprintf("socket%d.dimm%d_%d", socket, m, d))
			t.MustAddComponent(dimm, KindDIMM, socket)
			t.MustAddLink(LinkSpec{A: mc, B: dimm, Class: ClassIntraSocket,
				Capacity: dimmCapacity, BaseLatency: dramLatency})
		}
	}
	for r := 0; r < spec.rootPorts; r++ {
		rp := CompID(fmt.Sprintf("socket%d.rootport%d", socket, r))
		c := t.MustAddComponent(rp, KindRootPort, socket)
		// Presets default to IOMMU passthrough so the base fabric
		// latencies match Figure 1; experiments flip this knob to
		// "translate" to measure the translation cost.
		c.SetConfig(ConfigIOMMU, "passthrough")
		c.SetConfig(ConfigMaxPayload, "256")
		t.MustAddLink(LinkSpec{A: rp, B: llc, Class: ClassIntraSocket,
			Capacity: iioCapacity, BaseLatency: iioLatency})
	}
}

func rootPortID(socket, port int) CompID {
	return CompID(fmt.Sprintf("socket%d.rootport%d", socket, port))
}

// addSwitch attaches a PCIe switch under a root port and returns its ID.
func addSwitch(t *Topology, name CompID, socket int, rp CompID) CompID {
	t.MustAddComponent(name, KindPCIeSwitch, socket)
	t.MustAddLink(LinkSpec{A: rp, B: name, Class: ClassPCIeUp,
		Capacity: pcieCapacity, BaseLatency: pcieUpLatency})
	return name
}

// addDevice attaches an endpoint device under a parent (switch or root
// port), choosing the PCIe link class by the parent kind.
func addDevice(t *Topology, id CompID, kind Kind, socket int, parent CompID) {
	c := t.MustAddComponent(id, kind, socket)
	c.SetConfig(ConfigNUMA, "local")
	class := ClassPCIeDown
	lat := pcieDnLatency
	if t.Component(parent).Kind == KindRootPort {
		lat = rpDirectLat
	}
	t.MustAddLink(LinkSpec{A: parent, B: id, Class: class,
		Capacity: pcieCapacity, BaseLatency: lat})
}

// connectExternal adds the "external" node and one inter-host link per
// NIC, so end-to-end paths can traverse link class (5).
func connectExternal(t *Topology) {
	t.MustAddComponent("external0", KindExternal, -1)
	for _, nic := range t.ComponentsOfKind(KindNIC) {
		t.MustAddLink(LinkSpec{A: nic.ID, B: "external0", Class: ClassInterHost,
			Capacity: netCapacity, BaseLatency: netHopLatency})
	}
}

// MinimalHost is a single-socket host with one NIC, one GPU, one SSD
// behind a switch, and one memory channel. It is the smallest topology
// that still exercises every link class, intended for unit tests.
func MinimalHost() *Topology {
	t := New("minimal")
	buildSocket(t, 0, socketSpec{memCtrls: 1, dimmsPerCtrl: 1, rootPorts: 2})
	sw := addSwitch(t, "pcieswitch0", 0, rootPortID(0, 0))
	addDevice(t, "nic0", KindNIC, 0, sw)
	addDevice(t, "ssd0", KindSSD, 0, sw)
	addDevice(t, "gpu0", KindGPU, 0, rootPortID(0, 1))
	connectExternal(t)
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// TwoSocketServer reproduces the Figure 1 example topology: two
// sockets joined by an inter-socket connect, each socket with two
// memory controllers (two DIMMs each), two root ports, a PCIe switch
// carrying a NIC and an SSD, and a directly-attached GPU. The external
// node models the far end of the inter-host network.
func TwoSocketServer() *Topology {
	t := New("two-socket")
	for s := 0; s < 2; s++ {
		buildSocket(t, s, socketSpec{memCtrls: 2, dimmsPerCtrl: 2, rootPorts: 2})
		sw := addSwitch(t, CompID(fmt.Sprintf("pcieswitch%d", s)), s, rootPortID(s, 0))
		addDevice(t, CompID(fmt.Sprintf("nic%d", s)), KindNIC, s, sw)
		addDevice(t, CompID(fmt.Sprintf("ssd%d", s)), KindSSD, s, sw)
		addDevice(t, CompID(fmt.Sprintf("gpu%d", s)), KindGPU, s, rootPortID(s, 1))
	}
	t.MustAddLink(LinkSpec{A: "cpu0", B: "cpu1", Class: ClassInterSocket,
		Capacity: upiCapacity, BaseLatency: upiLatency})
	connectExternal(t)
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// DGXStyle models a DGX-class accelerator server: two sockets, four
// PCIe switches, eight GPUs, eight NICs and four NVMe SSDs, with two
// memory controllers per socket. This is the topology the paper's
// introduction motivates (NVIDIA DGX with eight InfiniBand adapters
// and eight GPUs).
func DGXStyle() *Topology {
	t := New("dgx-style")
	for s := 0; s < 2; s++ {
		buildSocket(t, s, socketSpec{memCtrls: 2, dimmsPerCtrl: 2, rootPorts: 2})
		for p := 0; p < 2; p++ {
			swi := s*2 + p
			sw := addSwitch(t, CompID(fmt.Sprintf("pcieswitch%d", swi)), s, rootPortID(s, p))
			for g := 0; g < 2; g++ {
				addDevice(t, CompID(fmt.Sprintf("gpu%d", swi*2+g)), KindGPU, s, sw)
				addDevice(t, CompID(fmt.Sprintf("nic%d", swi*2+g)), KindNIC, s, sw)
			}
			addDevice(t, CompID(fmt.Sprintf("ssd%d", swi)), KindSSD, s, sw)
		}
	}
	t.MustAddLink(LinkSpec{A: "cpu0", B: "cpu1", Class: ClassInterSocket,
		Capacity: upiCapacity, BaseLatency: upiLatency})
	connectExternal(t)
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// CXL parameters, calibrated to §2's "~150ns from device to host
// memory": a cxl.mem expander is one coherent hop off the LLC (mesh
// 5ns + link 145ns = 150ns from the CPU); a cxl.cache accelerator
// reaches host DRAM in link 90ns + LLC-to-DIMM 60ns = 150ns.
const (
	cxlMemLatency   = 145 * simtime.Nanosecond
	cxlCacheLatency = 90 * simtime.Nanosecond
	cxlCapacity     = 50e9 // B/s, CXL 2.0 x16 class
)

// CXLExpandedHost is the two-socket server with two CXL additions on
// socket 0 — the emerging-protocol configuration §2 discusses:
// "cxlmem0", a cxl.mem memory expander (schedulable memory: the
// interpreter's memory pseudo-destinations include it), and
// "cxlgpu0", a cxl.cache accelerator that reaches host DRAM
// coherently, without PCIe DMA or IOMMU translation.
func CXLExpandedHost() *Topology {
	t := TwoSocketServer()
	t.Name = "cxl-expanded"
	mem := t.MustAddComponent("cxlmem0", KindCXLMem, 0)
	mem.SetConfig(ConfigNUMA, "local")
	t.MustAddLink(LinkSpec{A: "socket0.llc", B: "cxlmem0", Class: ClassCXL,
		Capacity: cxlCapacity, BaseLatency: cxlMemLatency})
	gpu := t.MustAddComponent("cxlgpu0", KindGPU, 0)
	gpu.SetConfig(ConfigNUMA, "local")
	t.MustAddLink(LinkSpec{A: "socket0.llc", B: "cxlgpu0", Class: ClassCXL,
		Capacity: cxlCapacity, BaseLatency: cxlCacheLatency})
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// Presets maps preset names to constructors, for CLI tools.
var Presets = map[string]func() *Topology{
	"minimal":      MinimalHost,
	"two-socket":   TwoSocketServer,
	"dgx-style":    DGXStyle,
	"cxl-expanded": CXLExpandedHost,
}

// PresetNames returns the sorted preset names.
func PresetNames() []string {
	names := make([]string, 0, len(Presets))
	for n := range Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RepresentativeLink returns, for a topology built by a preset in this
// package, a canonical link of each class for envelope measurements
// (experiment E1). The intra-socket representative is the LLC-to-memory
// path entry (cpu -> llc), whose capacity reflects the aggregate
// intra-socket connect rather than a single DRAM channel.
func RepresentativeLink(t *Topology, class LinkClass) (*Link, error) {
	for _, l := range t.Links() {
		if l.Class != class {
			continue
		}
		if class == ClassIntraSocket {
			if t.Component(l.From).Kind == KindCPU && t.Component(l.To).Kind == KindLLC {
				return l, nil
			}
			continue
		}
		return l, nil
	}
	return nil, fmt.Errorf("topology: no %v link in %q", class, t.Name)
}
