package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestShortestPathMinimal(t *testing.T) {
	top := MinimalHost()
	p, err := top.ShortestPath("nic0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	if p.Src() != "nic0" || p.Dst() != "socket0.dimm0_0" {
		t.Fatalf("path endpoints %s -> %s", p.Src(), p.Dst())
	}
	// nic0 -> switch -> rootport -> llc -> memctrl -> dimm.
	wantNodes := []CompID{"nic0", "pcieswitch0", "socket0.rootport0",
		"socket0.llc", "socket0.memctrl0", "socket0.dimm0_0"}
	nodes := p.Nodes()
	if len(nodes) != len(wantNodes) {
		t.Fatalf("path %v, want %v", nodes, wantNodes)
	}
	for i := range wantNodes {
		if nodes[i] != wantNodes[i] {
			t.Fatalf("path %v, want %v", nodes, wantNodes)
		}
	}
}

func TestShortestPathLatencyIsSumOfLinks(t *testing.T) {
	top := TwoSocketServer()
	p, err := top.ShortestPath("gpu0", "socket0.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	var sum simtime.Duration
	for _, l := range p.Links {
		sum += l.BaseLatency
	}
	if p.BaseLatency() != sum {
		t.Fatalf("BaseLatency %v != sum %v", p.BaseLatency(), sum)
	}
	if sum <= 0 {
		t.Fatal("zero path latency")
	}
}

func TestShortestPathCrossSocket(t *testing.T) {
	top := TwoSocketServer()
	p, err := top.ShortestPath("gpu0", "socket1.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	hasUPI := false
	for _, l := range p.Links {
		if l.Class == ClassInterSocket {
			hasUPI = true
		}
	}
	if !hasUPI {
		t.Fatalf("cross-socket path %s avoids inter-socket link", p)
	}
}

func TestShortestPathErrors(t *testing.T) {
	top := MinimalHost()
	if _, err := top.ShortestPath("nope", "nic0"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := top.ShortestPath("nic0", "nope"); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := top.ShortestPath("nic0", "nic0"); err == nil {
		t.Error("src==dst accepted")
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	top := New("t")
	top.MustAddComponent("a", KindCPU, 0)
	top.MustAddComponent("b", KindGPU, 0)
	top.MustAddComponent("c", KindNIC, 0)
	top.MustAddLink(LinkSpec{A: "a", B: "b", Class: ClassIntraSocket, Capacity: 1})
	if _, err := top.ShortestPath("a", "c"); err == nil {
		t.Fatal("found path in disconnected graph")
	}
}

func TestEndToEndPathTraversesAllClasses(t *testing.T) {
	// The paper's motivating example: a remote RDMA access traverses
	// classes (1)-(5). From external0 to socket1 memory via nic0
	// (socket 0) the path must cross inter-host, PCIe down, PCIe up,
	// intra-socket and inter-socket links.
	top := TwoSocketServer()
	p, err := top.ShortestPath("external0", "socket1.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	// Force entry via nic0: external0 connects to both NICs; the
	// shortest route to socket1 memory goes via nic1 (no UPI hop), so
	// check class coverage on the nic0-entry variant too.
	classes := make(map[LinkClass]bool)
	for _, l := range p.Links {
		classes[l.Class] = true
	}
	for _, c := range []LinkClass{ClassInterHost, ClassPCIeDown, ClassPCIeUp, ClassIntraSocket} {
		if !classes[c] {
			t.Errorf("end-to-end path missing class %v: %s", c, p)
		}
	}
	p2, err := top.ShortestPath("nic0", "socket1.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	has1 := false
	for _, l := range p2.Links {
		if l.Class == ClassInterSocket {
			has1 = true
		}
	}
	if !has1 {
		t.Errorf("nic0 -> socket1 memory path missing inter-socket hop: %s", p2)
	}
}

func TestNoTransitThroughLeafDevices(t *testing.T) {
	// Routes must never hairpin through a GPU, SSD, DIMM or the
	// external node: nic0 -> socket1 memory must use the UPI, not
	// bounce out nic0 -> external -> nic1.
	top := TwoSocketServer()
	p, err := top.ShortestPath("nic0", "socket1.dimm0_0")
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.Nodes()
	for _, n := range nodes[1 : len(nodes)-1] {
		if !top.Component(n).Kind.CanForward() {
			t.Fatalf("path transits leaf device %s: %s", n, p)
		}
	}
	// Same invariant over k-shortest between every endpoint pair.
	eps := top.Endpoints()
	for _, a := range eps {
		for _, b := range eps {
			if a.ID == b.ID {
				continue
			}
			paths, err := top.KShortestPaths(a.ID, b.ID, 3)
			if err != nil {
				continue
			}
			for _, p := range paths {
				ns := p.Nodes()
				for _, n := range ns[1 : len(ns)-1] {
					if !top.Component(n).Kind.CanForward() {
						t.Fatalf("k-path transits leaf %s: %s", n, p)
					}
				}
			}
		}
	}
}

func TestCanForward(t *testing.T) {
	for k, want := range map[Kind]bool{
		KindCPU: true, KindNIC: true, KindLLC: true, KindPCIeSwitch: true,
		KindRootPort: true, KindMemCtrl: true,
		KindGPU: false, KindSSD: false, KindDIMM: false, KindExternal: false, KindFPGA: false,
	} {
		if k.CanForward() != want {
			t.Errorf("%v.CanForward() = %v, want %v", k, !want, want)
		}
	}
}

func TestKShortestPathsDistinctAndOrdered(t *testing.T) {
	top := TwoSocketServer()
	// gpu0 to memory: alternatives exist via memctrl0/memctrl1 and the
	// two DIMMs... but to a fixed DIMM, alternates route via other
	// memctrl are impossible; use k paths to a DIMM via different
	// intermediate orderings. Use a pair with real diversity:
	paths, err := top.KShortestPaths("gpu0", "socket0.dimm0_0", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].BaseLatency() < paths[i-1].BaseLatency() {
			t.Fatalf("paths not in latency order: %v then %v",
				paths[i-1].BaseLatency(), paths[i].BaseLatency())
		}
	}
	seen := make(map[string]bool)
	for _, p := range paths {
		s := p.String()
		if seen[s] {
			t.Fatalf("duplicate path %s", s)
		}
		seen[s] = true
		if p.Src() != "gpu0" || p.Dst() != "socket0.dimm0_0" {
			t.Fatalf("path endpoints wrong: %s", s)
		}
	}
}

func TestKShortestPathsLoopFree(t *testing.T) {
	top := DGXStyle()
	paths, err := top.KShortestPaths("gpu0", "ssd2", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		nodes := p.Nodes()
		seen := make(map[CompID]bool)
		for _, n := range nodes {
			if seen[n] {
				t.Fatalf("path has loop at %s: %s", n, p)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsKValidation(t *testing.T) {
	top := MinimalHost()
	if _, err := top.KShortestPaths("nic0", "gpu0", 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	paths, err := top.KShortestPaths("nic0", "gpu0", 1)
	if err != nil || len(paths) != 1 {
		t.Fatalf("k=1: %v, %d paths", err, len(paths))
	}
}

func TestPathHelpers(t *testing.T) {
	top := MinimalHost()
	p, _ := top.ShortestPath("nic0", "gpu0")
	if p.Hops() != len(p.Links) {
		t.Fatal("Hops wrong")
	}
	if p.BottleneckCapacity() <= 0 {
		t.Fatal("bottleneck not positive")
	}
	if !p.HasLink(p.Links[0].ID) {
		t.Fatal("HasLink false for own link")
	}
	if p.HasLink("nope->nope") {
		t.Fatal("HasLink true for absent link")
	}
	if len(p.LinkIDs()) != p.Hops() {
		t.Fatal("LinkIDs length wrong")
	}
	if len(p.Classes()) == 0 {
		t.Fatal("Classes empty")
	}
	var empty Path
	if empty.Src() != "" || empty.Dst() != "" || empty.BottleneckCapacity() != 0 {
		t.Fatal("empty path accessors wrong")
	}
	if empty.String() != "<empty path>" {
		t.Fatal("empty path String wrong")
	}
}

// Property: the shortest path between random endpoint pairs, when it
// exists, has latency no greater than any k-shortest alternative and
// starts/ends at the right components.
func TestPropertyShortestIsMinimal(t *testing.T) {
	top := DGXStyle()
	eps := top.Endpoints()
	f := func(a, b uint8) bool {
		src := eps[int(a)%len(eps)].ID
		dst := eps[int(b)%len(eps)].ID
		if src == dst {
			return true
		}
		sp, err := top.ShortestPath(src, dst)
		if err != nil {
			return true
		}
		alts, err := top.KShortestPaths(src, dst, 3)
		if err != nil {
			return false
		}
		for _, alt := range alts {
			if alt.BaseLatency() < sp.BaseLatency() {
				return false
			}
			if alt.Src() != src || alt.Dst() != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every hop in a shortest path is a real topology link and
// consecutive links chain correctly.
func TestPropertyPathWellFormed(t *testing.T) {
	top := TwoSocketServer()
	eps := top.Endpoints()
	f := func(a, b uint8) bool {
		src := eps[int(a)%len(eps)].ID
		dst := eps[int(b)%len(eps)].ID
		if src == dst {
			return true
		}
		p, err := top.ShortestPath(src, dst)
		if err != nil {
			return true
		}
		for i, l := range p.Links {
			if top.Link(l.ID) != l {
				return false
			}
			if i > 0 && p.Links[i-1].To != l.From {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkShortestPathDGX(b *testing.B) {
	top := DGXStyle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.ShortestPath("gpu0", "socket1.dimm1_1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKShortest4DGX(b *testing.B) {
	top := DGXStyle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.KShortestPaths("gpu0", "socket1.dimm1_1", 4); err != nil {
			b.Fatal(err)
		}
	}
}
