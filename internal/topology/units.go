package topology

import (
	"fmt"

	"repro/internal/simtime"
)

// Rate is a data rate in bytes per second. Fabric capacities and flow
// throughputs throughout the repository use this type.
type Rate float64

// GBps returns a rate of n gigabytes per second (decimal giga).
func GBps(n float64) Rate { return Rate(n * 1e9) }

// Gbps returns a rate of n gigabits per second.
func Gbps(n float64) Rate { return Rate(n * 1e9 / 8) }

// MBps returns a rate of n megabytes per second.
func MBps(n float64) Rate { return Rate(n * 1e6) }

// GBpsValue returns the rate in gigabytes per second.
func (r Rate) GBpsValue() float64 { return float64(r) / 1e9 }

// GbpsValue returns the rate in gigabits per second.
func (r Rate) GbpsValue() float64 { return float64(r) * 8 / 1e9 }

func (r Rate) String() string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.1fGB/s", float64(r)/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.1fMB/s", float64(r)/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fKB/s", float64(r)/1e3)
	}
	return fmt.Sprintf("%.0fB/s", float64(r))
}

// TimeToSend returns the serialization time for bytes at rate r.
// A non-positive rate yields a very large duration rather than a panic,
// so callers treat zero-rate links as effectively stalled.
func (r Rate) TimeToSend(bytes int64) simtime.Duration {
	if r <= 0 {
		return simtime.Duration(1<<62 - 1)
	}
	sec := float64(bytes) / float64(r)
	return simtime.Duration(sec * float64(simtime.Second))
}
