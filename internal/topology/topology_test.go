package topology

import (
	"strings"
	"testing"
)

func TestAddComponentDuplicate(t *testing.T) {
	top := New("t")
	if _, err := top.AddComponent("a", KindCPU, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AddComponent("a", KindGPU, 0); err == nil {
		t.Fatal("duplicate component accepted")
	}
	if _, err := top.AddComponent("", KindGPU, 0); err == nil {
		t.Fatal("empty component ID accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	top := New("t")
	top.MustAddComponent("a", KindCPU, 0)
	top.MustAddComponent("b", KindLLC, 0)
	cases := []struct {
		name string
		spec LinkSpec
	}{
		{"missing endpoint", LinkSpec{A: "a", B: "zz", Class: ClassIntraSocket, Capacity: 1}},
		{"self link", LinkSpec{A: "a", B: "a", Class: ClassIntraSocket, Capacity: 1}},
		{"zero capacity", LinkSpec{A: "a", B: "b", Class: ClassIntraSocket, Capacity: 0}},
		{"negative latency", LinkSpec{A: "a", B: "b", Class: ClassIntraSocket, Capacity: 1, BaseLatency: -1}},
	}
	for _, c := range cases {
		if _, _, err := top.AddLink(c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, _, err := top.AddLink(LinkSpec{A: "a", B: "b", Class: ClassIntraSocket, Capacity: 100, BaseLatency: 5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := top.AddLink(LinkSpec{A: "a", B: "b", Class: ClassIntraSocket, Capacity: 100}); err == nil {
		t.Fatal("duplicate link accepted")
	}
}

func TestLinkBidirectional(t *testing.T) {
	top := New("t")
	top.MustAddComponent("a", KindCPU, 0)
	top.MustAddComponent("b", KindLLC, 0)
	fwd, rev := top.MustAddLink(LinkSpec{A: "a", B: "b", Class: ClassIntraSocket, Capacity: 100, BaseLatency: 7})
	f, r := top.Link(fwd), top.Link(rev)
	if f == nil || r == nil {
		t.Fatal("links not retrievable")
	}
	if f.Reverse != r.ID || r.Reverse != f.ID {
		t.Fatal("reverse pointers wrong")
	}
	if f.From != "a" || f.To != "b" || r.From != "b" || r.To != "a" {
		t.Fatal("directions wrong")
	}
	if len(top.Outgoing("a")) != 1 || len(top.Incoming("a")) != 1 {
		t.Fatal("adjacency wrong")
	}
}

func TestValidateDisconnected(t *testing.T) {
	top := New("t")
	top.MustAddComponent("a", KindCPU, 0)
	top.MustAddComponent("b", KindLLC, 0)
	top.MustAddComponent("c", KindGPU, 0)
	top.MustAddLink(LinkSpec{A: "a", B: "b", Class: ClassIntraSocket, Capacity: 1})
	err := top.Validate()
	if err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Fatalf("disconnected graph validated: %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("t").Validate(); err == nil {
		t.Fatal("empty topology validated")
	}
}

func TestPresetsValid(t *testing.T) {
	for name, build := range Presets {
		top := build()
		if err := top.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if top.Name != name {
			t.Errorf("%s: preset Name = %q", name, top.Name)
		}
	}
}

func TestPresetSizes(t *testing.T) {
	cases := []struct {
		build           func() *Topology
		gpus, nics      int
		minComp, minLnk int
	}{
		{MinimalHost, 1, 1, 10, 20},
		{TwoSocketServer, 2, 2, 25, 50},
		{DGXStyle, 8, 8, 40, 80},
	}
	for _, c := range cases {
		top := c.build()
		if got := len(top.ComponentsOfKind(KindGPU)); got != c.gpus {
			t.Errorf("%s: %d GPUs, want %d", top.Name, got, c.gpus)
		}
		if got := len(top.ComponentsOfKind(KindNIC)); got != c.nics {
			t.Errorf("%s: %d NICs, want %d", top.Name, got, c.nics)
		}
		if top.NumComponents() < c.minComp {
			t.Errorf("%s: only %d components", top.Name, top.NumComponents())
		}
		if top.NumLinks() < c.minLnk {
			t.Errorf("%s: only %d links", top.Name, top.NumLinks())
		}
	}
}

func TestPresetLinksInsideEnvelopes(t *testing.T) {
	// Per-link static parameters must sit inside (or below, for
	// channel-level intra-socket links) the Figure 1 envelopes.
	for name, build := range Presets {
		top := build()
		for _, l := range top.Links() {
			env := PaperEnvelope(l.Class)
			if l.BaseLatency < env.MinLatency || l.BaseLatency > env.MaxLatency {
				t.Errorf("%s: link %s latency %v outside [%v,%v]",
					name, l.ID, l.BaseLatency, env.MinLatency, env.MaxLatency)
			}
			if l.Capacity > env.MaxCapacity {
				t.Errorf("%s: link %s capacity %v above envelope max %v",
					name, l.ID, l.Capacity, env.MaxCapacity)
			}
		}
		// Representative links must be fully inside the envelope.
		for _, class := range []LinkClass{ClassInterSocket, ClassIntraSocket, ClassPCIeUp, ClassPCIeDown, ClassInterHost} {
			l, err := RepresentativeLink(top, class)
			if err != nil {
				if class == ClassInterSocket && name == "minimal" {
					continue // single-socket host has no UPI link
				}
				t.Errorf("%s: %v", name, err)
				continue
			}
			env := PaperEnvelope(class)
			if !env.Contains(l.Capacity, l.BaseLatency) {
				t.Errorf("%s: representative %s (%v, %v) outside envelope",
					name, l.ID, l.Capacity, l.BaseLatency)
			}
		}
	}
}

func TestAllLinkClassesPresent(t *testing.T) {
	top := MinimalHost()
	have := make(map[LinkClass]bool)
	for _, l := range top.Links() {
		have[l.Class] = true
	}
	for _, c := range []LinkClass{ClassIntraSocket, ClassPCIeUp, ClassPCIeDown, ClassInterHost} {
		if !have[c] {
			t.Errorf("minimal host missing class %v", c)
		}
	}
	top2 := TwoSocketServer()
	have2 := make(map[LinkClass]bool)
	for _, l := range top2.Links() {
		have2[l.Class] = true
	}
	if !have2[ClassInterSocket] {
		t.Error("two-socket missing inter-socket link")
	}
}

func TestConfigRegistry(t *testing.T) {
	top := TwoSocketServer()
	llc := top.Component("socket0.llc")
	if llc == nil {
		t.Fatal("socket0.llc missing")
	}
	if v, ok := llc.ConfigValue(ConfigDDIO); !ok || v != "on" {
		t.Fatalf("DDIO config = %q,%v; want on,true", v, ok)
	}
	rp := top.Component("socket0.rootport0")
	if v, _ := rp.ConfigValue(ConfigIOMMU); v != "passthrough" {
		t.Fatalf("IOMMU config = %q", v)
	}
	llc.SetConfig(ConfigDDIO, "off")
	if v, _ := llc.ConfigValue(ConfigDDIO); v != "off" {
		t.Fatal("SetConfig did not update")
	}
}

func TestCloneIndependence(t *testing.T) {
	top := TwoSocketServer()
	cl := top.Clone()
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if cl.NumComponents() != top.NumComponents() || cl.NumLinks() != top.NumLinks() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone must not affect the original.
	var someLink *Link
	for _, l := range cl.Links() {
		someLink = l
		break
	}
	orig := top.Link(someLink.ID).Capacity
	someLink.Capacity = orig / 2
	if top.Link(someLink.ID).Capacity != orig {
		t.Fatal("clone aliases original links")
	}
	cl.Component("cpu0").SetConfig("x", "y")
	if _, ok := top.Component("cpu0").ConfigValue("x"); ok {
		t.Fatal("clone aliases original config")
	}
}

func TestEndpoints(t *testing.T) {
	top := MinimalHost()
	for _, c := range top.Endpoints() {
		if !c.Kind.IsEndpoint() {
			t.Errorf("%s listed as endpoint", c.ID)
		}
	}
	found := false
	for _, c := range top.Endpoints() {
		if c.ID == "nic0" {
			found = true
		}
	}
	if !found {
		t.Error("nic0 not in endpoints")
	}
}

func TestKindStringAndIsEndpoint(t *testing.T) {
	if KindGPU.String() != "gpu" || KindPCIeSwitch.String() != "pcieswitch" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty string")
	}
	if KindPCIeSwitch.IsEndpoint() || KindLLC.IsEndpoint() {
		t.Fatal("fabric kinds reported as endpoints")
	}
}

func TestRateHelpers(t *testing.T) {
	if GBps(1) != 1e9 {
		t.Fatal("GBps wrong")
	}
	if Gbps(8) != 1e9 {
		t.Fatal("Gbps wrong")
	}
	if MBps(1) != 1e6 {
		t.Fatal("MBps wrong")
	}
	if GBps(2).GBpsValue() != 2 {
		t.Fatal("GBpsValue wrong")
	}
	if Gbps(200).GbpsValue() != 200 {
		t.Fatal("GbpsValue wrong")
	}
	// 1 GB at 1 GB/s = 1 s.
	if d := GBps(1).TimeToSend(1e9); d != 1_000_000_000 {
		t.Fatalf("TimeToSend = %v", d)
	}
	if d := Rate(0).TimeToSend(1); d <= 0 {
		t.Fatal("zero-rate TimeToSend should be huge")
	}
}

func TestPaperEnvelopes(t *testing.T) {
	for c := ClassInterSocket; c <= ClassInterHost; c++ {
		env := PaperEnvelope(c)
		if env.MinCapacity >= env.MaxCapacity {
			t.Errorf("%v: capacity range inverted", c)
		}
		if env.MinLatency >= env.MaxLatency {
			t.Errorf("%v: latency range inverted", c)
		}
		if c.FigureRef() != int(c)+1 {
			t.Errorf("%v: figure ref wrong", c)
		}
	}
	env := PaperEnvelope(ClassInterSocket)
	if !env.Contains(GBps(40), 150) {
		t.Error("40GB/s,150ns should be inside inter-socket envelope")
	}
	if env.Contains(GBps(100), 150) {
		t.Error("100GB/s outside inter-socket capacity range")
	}
}

func TestDeterministicOrdering(t *testing.T) {
	a, b := TwoSocketServer(), TwoSocketServer()
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatal("nondeterministic link count")
	}
	for i := range la {
		if la[i].ID != lb[i].ID {
			t.Fatal("nondeterministic link ordering")
		}
	}
	ca, cb := a.Components(), b.Components()
	for i := range ca {
		if ca[i].ID != cb[i].ID {
			t.Fatal("nondeterministic component ordering")
		}
	}
}
