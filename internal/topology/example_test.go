package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

// Building a custom host and routing across it.
func Example() {
	t := topology.New("demo")
	t.MustAddComponent("cpu0", topology.KindCPU, 0)
	t.MustAddComponent("socket0.llc", topology.KindLLC, 0)
	t.MustAddComponent("socket0.rootport0", topology.KindRootPort, 0)
	t.MustAddComponent("nic0", topology.KindNIC, 0)
	t.MustAddLink(topology.LinkSpec{A: "cpu0", B: "socket0.llc",
		Class: topology.ClassIntraSocket, Capacity: topology.GBps(150), BaseLatency: 5})
	t.MustAddLink(topology.LinkSpec{A: "socket0.rootport0", B: "socket0.llc",
		Class: topology.ClassIntraSocket, Capacity: topology.GBps(110), BaseLatency: 25})
	t.MustAddLink(topology.LinkSpec{A: "socket0.rootport0", B: "nic0",
		Class: topology.ClassPCIeDown, Capacity: topology.GBps(32), BaseLatency: 60})
	if err := t.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	p, _ := t.ShortestPath("cpu0", "nic0")
	fmt.Println(p)
	fmt.Println(p.BaseLatency(), p.BottleneckCapacity())
	// Output:
	// cpu0 -> socket0.llc -> socket0.rootport0 -> nic0
	// 90ns 32.0GB/s
}

// The Figure 1 presets ship ready to use.
func ExampleTwoSocketServer() {
	t := topology.TwoSocketServer()
	fmt.Println(t.Name, t.NumComponents(), "components")
	p, _ := t.ShortestPath("gpu0", "socket1.dimm0_0")
	for _, class := range p.Classes() {
		fmt.Println(class)
	}
	// Output:
	// two-socket 29 components
	// pcie-down
	// intra-socket
	// inter-socket
}

// Figure 1's published envelopes are queryable.
func ExamplePaperEnvelope() {
	env := topology.PaperEnvelope(topology.ClassInterSocket)
	fmt.Println(env.Contains(topology.GBps(40), 150))
	fmt.Println(env.Contains(topology.GBps(500), 150))
	// Output:
	// true
	// false
}
