// Package intent implements the paper's "performance targets
// interpreter" (§3.2): it compiles an application's declared intent —
// "20 Gb/s between my GPU and memory, under 3 us" — into low-level,
// topology-specific requirements: a set of candidate pathways able to
// carry the rate within the latency bound (pipe model), or a per-link
// hose reservation (hose model). The interpreter is deliberately
// generic over topologies: the same intent compiles on any host
// preset, which is what lets tenants migrate without reconfiguring
// their intra-host network.
package intent

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fabric"
	"repro/internal/resmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Pseudo-destinations the interpreter expands against the concrete
// topology.
const (
	// AnyMemory targets any DIMM on the host; the scheduler picks the
	// pathway (and thereby the memory placement).
	AnyMemory topology.CompID = "memory:any"
	// MemorySocketPrefix targets any DIMM on one socket, e.g.
	// "memory:socket0".
	MemorySocketPrefix = "memory:socket"
)

// Target is one application intent.
type Target struct {
	Tenant fabric.TenantID
	Model  resmodel.Model

	// Pipe-model fields.
	Src topology.CompID
	// Dst is a concrete component or a memory pseudo-destination.
	Dst  topology.CompID
	Rate topology.Rate
	// MaxLatency bounds the pathway's idle latency; zero means
	// unconstrained.
	MaxLatency simtime.Duration

	// Hose-model field: the tenant's per-endpoint guarantees.
	Hoses []resmodel.HoseDemand
}

func (t Target) String() string {
	if t.Model == resmodel.ModelHose {
		return fmt.Sprintf("%s: hose over %d endpoints", t.Tenant, len(t.Hoses))
	}
	return fmt.Sprintf("%s: pipe %s -> %s @ %v", t.Tenant, t.Src, t.Dst, t.Rate)
}

// Requirement is a compiled intent, ready for the scheduler.
type Requirement struct {
	Target Target
	// Candidates are the feasible pathways for a pipe intent, sorted
	// by idle latency: every candidate can carry Target.Rate within
	// Target.MaxLatency on an otherwise idle fabric.
	Candidates []topology.Path
	// HoseReservation is the compiled per-link requirement for a hose
	// intent.
	HoseReservation resmodel.Reservation
}

// Interpreter compiles intents against one topology.
type Interpreter struct {
	topo *topology.Topology
	// k is the number of alternative paths generated per concrete
	// destination.
	k int
	// effCap returns a link's usable capacity; the fabric's derated
	// capacities are used when available so feasibility checks match
	// what the fabric will actually deliver.
	effCap func(topology.LinkID) topology.Rate
}

// New builds an interpreter generating up to k candidate paths per
// concrete destination. fab may be nil, in which case raw topology
// capacities are used for feasibility.
func New(topo *topology.Topology, k int, fab *fabric.Fabric) (*Interpreter, error) {
	if k <= 0 {
		return nil, fmt.Errorf("intent: k must be positive")
	}
	eff := func(id topology.LinkID) topology.Rate {
		if l := topo.Link(id); l != nil {
			return l.Capacity
		}
		return 0
	}
	if fab != nil {
		eff = func(id topology.LinkID) topology.Rate {
			c, err := fab.EffectiveCapacity(id)
			if err != nil {
				return 0
			}
			return c
		}
	}
	return &Interpreter{topo: topo, k: k, effCap: eff}, nil
}

// Compile turns one target into a requirement, or explains why it is
// unsatisfiable on this topology.
func (in *Interpreter) Compile(t Target) (Requirement, error) {
	switch t.Model {
	case resmodel.ModelHose:
		return in.compileHose(t)
	case resmodel.ModelPipe, "":
		return in.compilePipe(t)
	}
	return Requirement{}, fmt.Errorf("intent: unknown model %q", t.Model)
}

// CompileAll compiles a batch, failing on the first unsatisfiable
// target.
func (in *Interpreter) CompileAll(targets []Target) ([]Requirement, error) {
	out := make([]Requirement, 0, len(targets))
	for _, t := range targets {
		r, err := in.Compile(t)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func (in *Interpreter) compileHose(t Target) (Requirement, error) {
	if t.Tenant == "" {
		return Requirement{}, fmt.Errorf("intent: empty tenant")
	}
	res, err := resmodel.ProvisionHose(in.topo, t.Hoses)
	if err != nil {
		return Requirement{}, err
	}
	// Feasibility: the hose reservation alone must fit link
	// capacities.
	free := make(map[topology.LinkID]topology.Rate, len(res.Links))
	for l := range res.Links {
		free[l] = in.effCap(l)
	}
	if v := resmodel.CheckFit(res, free); len(v) != 0 {
		return Requirement{}, fmt.Errorf("intent: hose infeasible: %v", v[0])
	}
	return Requirement{Target: t, HoseReservation: res}, nil
}

func (in *Interpreter) compilePipe(t Target) (Requirement, error) {
	if t.Tenant == "" {
		return Requirement{}, fmt.Errorf("intent: empty tenant")
	}
	if t.Rate <= 0 {
		return Requirement{}, fmt.Errorf("intent: non-positive rate %v", t.Rate)
	}
	if in.topo.Component(t.Src) == nil {
		return Requirement{}, fmt.Errorf("intent: unknown source %q", t.Src)
	}
	dsts, err := in.expandDst(t.Dst)
	if err != nil {
		return Requirement{}, err
	}
	var candidates []topology.Path
	for _, d := range dsts {
		if d == t.Src {
			continue
		}
		paths, err := in.topo.KShortestPaths(t.Src, d, in.k)
		if err != nil {
			continue
		}
		candidates = append(candidates, paths...)
	}
	// Filter: capacity and latency feasibility. When no single
	// pathway can carry the rate, fall back to the latency-feasible
	// set so the scheduler may stripe the pipe across several
	// pathways — provided their combined bottlenecks could possibly
	// cover it (an optimistic bound; the scheduler's split placement
	// does the exact accounting).
	feasible := make([]topology.Path, 0, len(candidates))
	latencyOK := make([]topology.Path, 0, len(candidates))
	var sumCap topology.Rate
	for _, p := range candidates {
		if t.MaxLatency > 0 && p.BaseLatency() > t.MaxLatency {
			continue
		}
		latencyOK = append(latencyOK, p)
		sumCap += in.pathCapacity(p)
		if in.pathCapacity(p) >= t.Rate {
			feasible = append(feasible, p)
		}
	}
	if len(feasible) == 0 {
		if len(latencyOK) >= 2 && sumCap >= t.Rate {
			feasible = latencyOK
		} else {
			return Requirement{}, fmt.Errorf(
				"intent: %s: no pathway (or combination) can carry %v within latency bound %v",
				t, t.Rate, t.MaxLatency)
		}
	}
	sort.Slice(feasible, func(i, j int) bool {
		li, lj := feasible[i].BaseLatency(), feasible[j].BaseLatency()
		if li != lj {
			return li < lj
		}
		return feasible[i].String() < feasible[j].String()
	})
	return Requirement{Target: t, Candidates: feasible}, nil
}

func (in *Interpreter) pathCapacity(p topology.Path) topology.Rate {
	var min topology.Rate
	for i, l := range p.Links {
		c := in.effCap(l.ID)
		if i == 0 || c < min {
			min = c
		}
	}
	return min
}

// memoryComponents returns the host's schedulable memory: DRAM DIMMs
// and CXL memory expanders.
func (in *Interpreter) memoryComponents() []*topology.Component {
	out := in.topo.ComponentsOfKind(topology.KindDIMM)
	out = append(out, in.topo.ComponentsOfKind(topology.KindCXLMem)...)
	return out
}

// expandDst resolves pseudo-destinations to concrete components.
func (in *Interpreter) expandDst(dst topology.CompID) ([]topology.CompID, error) {
	switch {
	case dst == AnyMemory:
		mems := in.memoryComponents()
		if len(mems) == 0 {
			return nil, fmt.Errorf("intent: host has no memory")
		}
		out := make([]topology.CompID, len(mems))
		for i, d := range mems {
			out[i] = d.ID
		}
		return out, nil
	case strings.HasPrefix(string(dst), MemorySocketPrefix):
		sock, err := strconv.Atoi(strings.TrimPrefix(string(dst), MemorySocketPrefix))
		if err != nil {
			return nil, fmt.Errorf("intent: bad memory destination %q", dst)
		}
		var out []topology.CompID
		for _, d := range in.memoryComponents() {
			if d.Socket == sock {
				out = append(out, d.ID)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("intent: socket %d has no memory", sock)
		}
		return out, nil
	default:
		if in.topo.Component(dst) == nil {
			return nil, fmt.Errorf("intent: unknown destination %q", dst)
		}
		return []topology.CompID{dst}, nil
	}
}
