package intent

import (
	"strings"
	"testing"

	"repro/internal/resmodel"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func interp(t *testing.T) *Interpreter {
	t.Helper()
	in, err := New(topology.TwoSocketServer(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewValidation(t *testing.T) {
	if _, err := New(topology.MinimalHost(), 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestCompilePipeConcrete(t *testing.T) {
	in := interp(t)
	req, err := in.Compile(Target{
		Tenant: "ml", Src: "gpu0", Dst: "nic0", Rate: topology.GBps(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, p := range req.Candidates {
		if p.Src() != "gpu0" || p.Dst() != "nic0" {
			t.Fatalf("candidate endpoints %s -> %s", p.Src(), p.Dst())
		}
	}
	// Sorted by latency.
	for i := 1; i < len(req.Candidates); i++ {
		if req.Candidates[i].BaseLatency() < req.Candidates[i-1].BaseLatency() {
			t.Fatal("candidates not latency-sorted")
		}
	}
}

func TestCompilePipeAnyMemoryExpands(t *testing.T) {
	in := interp(t)
	req, err := in.Compile(Target{
		Tenant: "ml", Src: "gpu0", Dst: AnyMemory, Rate: topology.GBps(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 DIMMs on the host -> candidates to several distinct DIMMs.
	dsts := make(map[topology.CompID]bool)
	for _, p := range req.Candidates {
		dsts[p.Dst()] = true
	}
	if len(dsts) < 4 {
		t.Fatalf("AnyMemory expanded to only %d destinations", len(dsts))
	}
}

func TestCompilePipeSocketMemory(t *testing.T) {
	in := interp(t)
	req, err := in.Compile(Target{
		Tenant: "ml", Src: "gpu0", Dst: "memory:socket1", Rate: topology.GBps(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.TwoSocketServer()
	for _, p := range req.Candidates {
		if topo.Component(p.Dst()).Socket != 1 {
			t.Fatalf("candidate to %s not on socket 1", p.Dst())
		}
	}
	if _, err := in.Compile(Target{Tenant: "t", Src: "gpu0", Dst: "memory:socketX", Rate: 1}); err == nil {
		t.Fatal("malformed socket target accepted")
	}
	if _, err := in.Compile(Target{Tenant: "t", Src: "gpu0", Dst: "memory:socket7", Rate: 1}); err == nil {
		t.Fatal("absent socket accepted")
	}
}

func TestCompilePipeCapacityInfeasible(t *testing.T) {
	in := interp(t)
	_, err := in.Compile(Target{
		Tenant: "ml", Src: "gpu0", Dst: "nic0", Rate: topology.GBps(100),
	})
	if err == nil || !strings.Contains(err.Error(), "no pathway") {
		t.Fatalf("100GB/s over PCIe compiled: %v", err)
	}
}

func TestCompilePipeLatencyBound(t *testing.T) {
	in := interp(t)
	// Tight bound excludes cross-socket paths.
	req, err := in.Compile(Target{
		Tenant: "ml", Src: "gpu0", Dst: AnyMemory, Rate: topology.GBps(5),
		MaxLatency: 250 * simtime.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.TwoSocketServer()
	for _, p := range req.Candidates {
		if topo.Component(p.Dst()).Socket != 0 {
			t.Fatalf("latency-bounded candidate crossed sockets: %s", p)
		}
	}
	// Impossible bound.
	if _, err := in.Compile(Target{
		Tenant: "ml", Src: "gpu0", Dst: "nic0", Rate: 1, MaxLatency: 1,
	}); err == nil {
		t.Fatal("1ns latency bound compiled")
	}
}

func TestCompileValidationErrors(t *testing.T) {
	in := interp(t)
	cases := []Target{
		{Tenant: "", Src: "gpu0", Dst: "nic0", Rate: 1},
		{Tenant: "t", Src: "gpu0", Dst: "nic0", Rate: 0},
		{Tenant: "t", Src: "nope", Dst: "nic0", Rate: 1},
		{Tenant: "t", Src: "gpu0", Dst: "nope", Rate: 1},
		{Tenant: "t", Model: "weird", Src: "gpu0", Dst: "nic0", Rate: 1},
	}
	for i, c := range cases {
		if _, err := in.Compile(c); err == nil {
			t.Errorf("case %d compiled: %+v", i, c)
		}
	}
}

func TestCompileHose(t *testing.T) {
	in := interp(t)
	req, err := in.Compile(Target{
		Tenant: "dist", Model: resmodel.ModelHose,
		Hoses: []resmodel.HoseDemand{
			{Endpoint: "gpu0", Egress: topology.GBps(5), Ingress: topology.GBps(5)},
			{Endpoint: "gpu1", Egress: topology.GBps(5), Ingress: topology.GBps(5)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(req.HoseReservation.Links) == 0 {
		t.Fatal("hose compiled to empty reservation")
	}
	// Infeasible hose: more than link capacity.
	if _, err := in.Compile(Target{
		Tenant: "dist", Model: resmodel.ModelHose,
		Hoses: []resmodel.HoseDemand{
			{Endpoint: "gpu0", Egress: topology.GBps(100), Ingress: topology.GBps(100)},
			{Endpoint: "gpu1", Egress: topology.GBps(100), Ingress: topology.GBps(100)},
		},
	}); err == nil {
		t.Fatal("infeasible hose compiled")
	}
}

func TestCompileAll(t *testing.T) {
	in := interp(t)
	reqs, err := in.CompileAll([]Target{
		{Tenant: "a", Src: "gpu0", Dst: "nic0", Rate: topology.GBps(1)},
		{Tenant: "b", Src: "ssd0", Dst: AnyMemory, Rate: topology.GBps(1)},
	})
	if err != nil || len(reqs) != 2 {
		t.Fatalf("CompileAll: %v, %d", err, len(reqs))
	}
	if _, err := in.CompileAll([]Target{
		{Tenant: "a", Src: "gpu0", Dst: "nic0", Rate: topology.GBps(1)},
		{Tenant: "b", Src: "gpu0", Dst: "nic0", Rate: -1},
	}); err == nil {
		t.Fatal("batch with bad target compiled")
	}
}

func TestInterpreterIsTopologyGeneric(t *testing.T) {
	// The same intent must compile on every preset that has the
	// components — the migration property.
	target := Target{Tenant: "ml", Src: "gpu0", Dst: AnyMemory, Rate: topology.GBps(8)}
	for name, build := range topology.Presets {
		in, err := New(build(), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Compile(target); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
}
