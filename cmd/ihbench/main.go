// Command ihbench regenerates the reproduction's experiment tables
// (E1-E10, see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	ihbench            # run everything
//	ihbench -run E7    # one experiment
//	ihbench -seed 7    # different seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/experiments"
)

func main() {
	if cli.MaybeVersion("ihbench", os.Args[1:]) {
		return
	}
	run := flag.String("run", "all", "experiment id (E1..E10) or 'all'")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	var list []experiments.Experiment
	if *run == "all" {
		list = experiments.Registry
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihbench: %v\n", err)
			os.Exit(1)
		}
		list = []experiments.Experiment{e}
	}
	for _, e := range list {
		start := time.Now()
		tab, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
