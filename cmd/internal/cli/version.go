package cli

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version renders a one-line version banner for a tool, stamped from
// the build info the Go linker embeds: module version (if built as a
// versioned module), VCS revision and dirty state, and the Go
// toolchain.
func Version(tool string) string {
	ver, rev, dirty := "devel", "", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			ver = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
			case "vcs.modified":
				if kv.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
	}
	out := tool + " " + ver
	if rev != "" {
		out += " (" + rev + dirty + ")"
	}
	return out + " " + runtime.Version()
}

// MaybeVersion handles a version request before flag parsing: when the
// first argument is "version", "-version" or "--version" it prints the
// banner and reports true, and the caller should exit. Every cmd/*
// binary calls this first so `<tool> -version` works uniformly.
func MaybeVersion(tool string, args []string) bool {
	if len(args) == 0 {
		return false
	}
	switch args[0] {
	case "version", "-version", "--version":
		fmt.Println(Version(tool))
		return true
	}
	return false
}
