// Package cli holds the flag handling and fabric setup shared by the
// diagnostic commands (ihping, ihtrace, ihperf, ihsniff): preset
// selection, optional background load, and optional fault injection,
// so every tool can reproduce the paper's scenarios from the shell.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Common is the flag set shared by the diagnostic tools.
type Common struct {
	Preset   string
	HostFile string
	Seed     int64
	Loopback bool
	MLLoad   bool
	Degrade  string
	Fail     string
}

// Register installs the shared flags.
func (c *Common) Register() {
	flag.StringVar(&c.Preset, "preset", "two-socket",
		"topology preset: "+strings.Join(topology.PresetNames(), ", "))
	flag.StringVar(&c.HostFile, "hostfile", "",
		"JSON host description to use instead of a preset (see topology.FromJSON)")
	flag.Int64Var(&c.Seed, "seed", 1, "simulation seed")
	flag.BoolVar(&c.Loopback, "loopback", false, "start an RDMA loopback antagonist on nic0")
	flag.BoolVar(&c.MLLoad, "mlload", false, "start an ML staging workload on gpu0")
	flag.StringVar(&c.Degrade, "degrade", "", "silently degrade a directed link (e.g. pcieswitch0->nic0)")
	flag.StringVar(&c.Fail, "fail", "", "hard-fail a directed link")
}

// Topology resolves the -hostfile/-preset flags to a topology.
func (c *Common) Topology() (*topology.Topology, error) {
	if c.HostFile != "" {
		f, err := os.Open(c.HostFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.FromJSON(f)
	}
	build, ok := topology.Presets[c.Preset]
	if !ok {
		return nil, fmt.Errorf("unknown preset %q (have %s)", c.Preset, strings.Join(topology.PresetNames(), ", "))
	}
	return build(), nil
}

// Build constructs the fabric, applies load and faults, and lets the
// background settle.
func (c *Common) Build() (*fabric.Fabric, error) {
	topo, err := c.Topology()
	if err != nil {
		return nil, err
	}
	engine := simtime.NewEngine(c.Seed)
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	if c.Loopback {
		if _, err := workload.StartLoopback(fab, "antagonist", "nic0", "socket0.dimm0_0"); err != nil {
			return nil, err
		}
	}
	if c.MLLoad {
		if _, err := workload.StartML(fab, workload.DefaultMLConfig("ml")); err != nil {
			return nil, err
		}
	}
	if c.Degrade != "" {
		if err := fab.DegradeLink(topology.LinkID(c.Degrade), 0.2, 10*simtime.Microsecond); err != nil {
			return nil, err
		}
	}
	if c.Fail != "" {
		if err := fab.FailLink(topology.LinkID(c.Fail)); err != nil {
			return nil, err
		}
	}
	engine.RunFor(50 * simtime.Microsecond)
	return fab, nil
}
