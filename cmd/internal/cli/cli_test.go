package cli

import (
	"testing"
)

func TestTopologyPresetResolution(t *testing.T) {
	c := Common{Preset: "two-socket"}
	topo, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "two-socket" {
		t.Fatalf("name %q", topo.Name)
	}
	c.Preset = "warp-core"
	if _, err := c.Topology(); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTopologyHostFile(t *testing.T) {
	c := Common{HostFile: "../../../hosts/lab-box.json"}
	topo, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "lab-box" {
		t.Fatalf("name %q", topo.Name)
	}
	if topo.Component("fpga0") == nil {
		t.Fatal("fpga0 missing from host file")
	}
	c.HostFile = "/nonexistent.json"
	if _, err := c.Topology(); err == nil {
		t.Fatal("missing host file accepted")
	}
}

func TestBuildWithLoadAndFaults(t *testing.T) {
	c := Common{Preset: "two-socket", Seed: 3, Loopback: true, MLLoad: true,
		Degrade: "pcieswitch0->nic0"}
	fab, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if fab.Flows() == 0 {
		t.Fatal("no load flows installed")
	}
	if frac, _ := fab.LinkDegraded("pcieswitch0->nic0"); frac == 0 {
		t.Fatal("degradation not applied")
	}
	c = Common{Preset: "two-socket", Fail: "pcieswitch0->nic0"}
	fab, err = c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !fab.LinkFailed("pcieswitch0->nic0") {
		t.Fatal("failure not applied")
	}
	c = Common{Preset: "two-socket", Fail: "no->where"}
	if _, err := c.Build(); err == nil {
		t.Fatal("bad fault link accepted")
	}
}
