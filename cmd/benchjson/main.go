// Command benchjson turns `go test -bench -benchmem` output into a
// committed benchmark-trajectory file and enforces allocation budgets.
// Budgets are keyed by the output filename, so one binary gates every
// trajectory file (BENCH_fabric.json for the fabric hot path,
// BENCH_obs.json for the observability pipeline).
//
// Usage:
//
//	go test -bench 'BenchmarkFabric...' -benchmem -run '^$' ./internal/fabric | benchjson -out BENCH_fabric.json
//
// The output file keeps two sections: "baseline" (the numbers captured
// when the file was first generated — for the fabric, the
// pre-incremental-engine implementation) and "current" (overwritten on
// every run). An existing baseline is never touched, so the file
// records the perf trajectory across the optimization, not just the
// latest numbers.
//
// Timing numbers are machine-dependent, so CI gates only on the
// allocation counts, which are deterministic for a deterministic
// simulator: if a benchmark listed in allocBudgets exceeds its budget,
// benchjson exits non-zero and prints the violation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// allocBudgetsByFile holds the committed allocation budgets, keyed by
// trajectory filename, then by benchmark name with the GOMAXPROCS
// suffix stripped.
//
// BENCH_fabric.json: the steady-state recompute budget is the whole
// point of the incremental engine — zero.
//
// BENCH_obs.json: the event-bus publish path runs inside the
// simulation hot loop, so it must not allocate at all, fan-out or not.
// The steady-state fleet roll-up (one dirty shard between scrapes)
// reuses per-runner scratch accumulators, so its budget is a flat 64
// allocs/op regardless of host count — any O(hosts) allocation growth
// busts it immediately. The cold roll-up (every shard dirty) may
// allocate O(shards) snapshot copies, never O(hosts). The sharded
// RunFor tiers budget the epoch engine's per-advance allocations —
// dominated by the hosts' own simulation work, so they scale with
// host-milliseconds, with ~40% headroom over the observed cost.
var allocBudgetsByFile = map[string]map[string]int64{
	"BENCH_fabric.json": {
		"BenchmarkFabricRecomputeSteadyState":    0,
		"BenchmarkFabricFlowChurn/flows=100":     64,
		"BenchmarkFabricFlowChurn/flows=1000":    64,
		"BenchmarkFabricFlowChurn/flows=10000":   64,
		"BenchmarkFabricFlowChurn/flows=100000":  64,
		"BenchmarkFabricFlowChurn/flows=1000000": 96,
		// The component-solve pair: serial re-solves reuse scratch
		// arenas (near-zero); the parallel flavor may allocate a
		// handful of coordination objects per solve.
		"BenchmarkFabricComponentSolve/serial":   8,
		"BenchmarkFabricComponentSolve/parallel": 32,
	},
	"BENCH_obs.json": {
		"BenchmarkBusPublish":        0,
		"BenchmarkBusPublishFanout8": 0,
		// Steady-state scrape: one shard refold + S-way merge from
		// cached snapshots. Observed ~32 allocs/op at every tier.
		"BenchmarkFleetRollup/hosts=16":   64,
		"BenchmarkFleetRollup/hosts=64":   64,
		"BenchmarkFleetRollup/hosts=256":  64,
		"BenchmarkFleetRollup/hosts=1024": 64,
		// Cold fold: every shard refolds, then the merge. Observed 92
		// at 4 shards (256 hosts) and 319 at 16 shards (1024).
		"BenchmarkFleetRollupCold/hosts=256":  192,
		"BenchmarkFleetRollupCold/hosts=1024": 512,
		// One millisecond of sharded fleet virtual time. Observed
		// 5.6M allocs at 1024 hosts, ~10x that at 10000.
		"BenchmarkFleetRunFor/hosts=1024/sharded":  8_000_000,
		"BenchmarkFleetRunFor/hosts=10000/sharded": 80_000_000,
	},
	// BENCH_remedy.json: the controller's steady-state step is the
	// standing tax paid on every healthy host — zero allocations.
	"BENCH_remedy.json": {
		"BenchmarkRemedyStepIdle": 0,
	},
}

// metricBudgetsByFile gates custom b.ReportMetric values the same way
// alloc budgets gate allocations. Only virtual-time metrics belong
// here: they are deterministic for a deterministic simulator, so a
// regression is a behavior change, not machine noise. The remediation
// MTTR budget is the paper's headline: fault-to-healed inside a
// millisecond at p50 against the seeded chaos adversary (observed
// steady state is 600us: ~3 heartbeat rounds to detect and localize,
// one planner pass to roll back, hysteresis to confirm).
var metricBudgetsByFile = map[string]map[string]map[string]float64{
	"BENCH_remedy.json": {
		"BenchmarkRemedyMTTR": {
			"mttr_p50_us": 1000,
			"mttr_p99_us": 2000,
		},
	},
}

// Result is one benchmark's measurement.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric values (e.g. mttr_p50_us),
	// keyed by their unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the committed benchmark-trajectory document.
type File struct {
	Schema       int               `json:"schema"`
	BaselineNote string            `json:"baseline_note,omitempty"`
	Baseline     map[string]Result `json:"baseline"`
	Current      map[string]Result `json:"current"`
	AllocBudgets map[string]int64  `json:"alloc_budgets"`
	// MetricBudgets caps custom metrics per benchmark (virtual-time
	// values only — deterministic, so CI-gateable like allocations).
	MetricBudgets map[string]map[string]float64 `json:"metric_budgets,omitempty"`
}

// gomaxprocsSuffix strips the trailing "-N" procs decoration Go
// appends to benchmark names, so names are machine-independent keys.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// customUnit recognizes b.ReportMetric unit strings.
var customUnit = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// parseBench extracts results from `go test -bench` output lines of
// the form:
//
//	BenchmarkName-16  100  12345 ns/op  678 B/op  9 allocs/op
func parseBench(lines []string) (map[string]Result, error) {
	out := make(map[string]Result)
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp, err = strconv.ParseFloat(v, 64)
			case "B/op":
				r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
			default:
				// b.ReportMetric custom units: bare identifiers like
				// "mttr_p50_us". Anything else is not a metric pair.
				if !customUnit.MatchString(unit) {
					continue
				}
				var f float64
				f, err = strconv.ParseFloat(v, 64)
				if err == nil {
					if r.Extra == nil {
						r.Extra = make(map[string]float64)
					}
					r.Extra[unit] = f
				}
			}
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad %s value %q in %q", unit, v, line)
			}
		}
		out[name] = r
	}
	return out, nil
}

func run(out, note string) error {
	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		fmt.Println(line) // pass through so CI logs keep the raw output
	}
	if err := sc.Err(); err != nil {
		return err
	}
	current, err := parseBench(lines)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("benchjson: no benchmark results on stdin")
	}

	doc := File{Schema: 1, BaselineNote: note}
	if raw, err := os.ReadFile(out); err == nil {
		var prev File
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("benchjson: existing %s is not valid: %w", out, err)
		}
		doc.Baseline = prev.Baseline
		if prev.BaselineNote != "" {
			doc.BaselineNote = prev.BaselineNote
		}
	}
	if len(doc.Baseline) == 0 {
		// First capture: the trajectory starts here.
		doc.Baseline = current
	}
	allocBudgets := allocBudgetsByFile[filepath.Base(out)]
	metricBudgets := metricBudgetsByFile[filepath.Base(out)]
	doc.Current = current
	doc.AllocBudgets = allocBudgets
	doc.MetricBudgets = metricBudgets

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", out, len(current))

	violations := checkBudgets(current, allocBudgets, metricBudgets)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchjson: %d budget violation(s)", len(violations))
	}
	fmt.Fprintln(os.Stderr, "benchjson: all budgets met")
	return nil
}

// checkBudgets returns one violation message per busted or missing
// budgeted benchmark. A budgeted name absent from the input is a hard
// failure, not a skip: without it, renaming (or forgetting to run) a
// gated benchmark would silently drop its budget.
func checkBudgets(current map[string]Result, allocBudgets map[string]int64, metricBudgets map[string]map[string]float64) []string {
	var violations []string
	for name, budget := range allocBudgets {
		r, ok := current[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: budgeted benchmark missing from input", name))
			continue
		}
		if r.AllocsPerOp > budget {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op exceeds budget %d",
				name, r.AllocsPerOp, budget))
		}
	}
	for name, budgets := range metricBudgets {
		r, ok := current[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: metric-budgeted benchmark missing from input", name))
			continue
		}
		for metric, budget := range budgets {
			v, ok := r.Extra[metric]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s: metric %s missing from output", name, metric))
				continue
			}
			if v > budget {
				violations = append(violations, fmt.Sprintf("%s: %s = %g exceeds budget %g",
					name, metric, v, budget))
			}
		}
	}
	sort.Strings(violations)
	return violations
}

func main() {
	out := flag.String("out", "BENCH_fabric.json", "trajectory file to write")
	note := flag.String("note", "", "baseline annotation (kept from existing file if set there)")
	flag.Parse()
	if err := run(*out, *note); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
