package main

import (
	"strings"
	"testing"
)

// TestParseBenchStripsProcsSuffix pins the machine-independent keying:
// the "-N" GOMAXPROCS decoration never reaches the trajectory file.
func TestParseBenchStripsProcsSuffix(t *testing.T) {
	lines := []string{
		"goos: linux",
		"BenchmarkFabricFlowChurn/flows=100000-8  	     100	  45000000 ns/op	     608 B/op	      16 allocs/op",
		"BenchmarkRemedyMTTR-4  	     200	   1000 ns/op	       600 mttr_p50_us	       900 mttr_p99_us",
		"PASS",
	}
	got, err := parseBench(lines)
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	churn, ok := got["BenchmarkFabricFlowChurn/flows=100000"]
	if !ok {
		t.Fatalf("churn benchmark missing; keys: %v", got)
	}
	if churn.AllocsPerOp != 16 || churn.BytesPerOp != 608 {
		t.Fatalf("churn = %+v, want 16 allocs/op 608 B/op", churn)
	}
	mttr, ok := got["BenchmarkRemedyMTTR"]
	if !ok {
		t.Fatalf("mttr benchmark missing; keys: %v", got)
	}
	if mttr.Extra["mttr_p50_us"] != 600 || mttr.Extra["mttr_p99_us"] != 900 {
		t.Fatalf("mttr extras = %v, want p50=600 p99=900", mttr.Extra)
	}
}

// TestCheckBudgetsMissingBenchmarkFails pins the hard-fail contract:
// a budgeted benchmark absent from the input is a violation, so a
// renamed or skipped tier cannot silently drop its gate.
func TestCheckBudgetsMissingBenchmarkFails(t *testing.T) {
	current := map[string]Result{
		"BenchmarkFabricFlowChurn/flows=100": {AllocsPerOp: 2},
	}
	alloc := map[string]int64{
		"BenchmarkFabricFlowChurn/flows=100":     64,
		"BenchmarkFabricFlowChurn/flows=1000000": 96,
	}
	metric := map[string]map[string]float64{
		"BenchmarkRemedyMTTR": {"mttr_p50_us": 1000},
	}
	violations := checkBudgets(current, alloc, metric)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want exactly 2 (missing alloc tier, missing metric bench)", violations)
	}
	want := []string{
		"BenchmarkFabricFlowChurn/flows=1000000: budgeted benchmark missing from input",
		"BenchmarkRemedyMTTR: metric-budgeted benchmark missing from input",
	}
	for i, w := range want {
		if violations[i] != w {
			t.Fatalf("violations[%d] = %q, want %q", i, violations[i], w)
		}
	}
}

// TestCheckBudgetsOverBudgetFails covers the two over-budget shapes:
// an alloc count above its cap and a reported metric above its cap.
func TestCheckBudgetsOverBudgetFails(t *testing.T) {
	current := map[string]Result{
		"BenchmarkFabricRecomputeSteadyState": {AllocsPerOp: 3},
		"BenchmarkRemedyMTTR":                 {Extra: map[string]float64{"mttr_p50_us": 1500}},
	}
	alloc := map[string]int64{"BenchmarkFabricRecomputeSteadyState": 0}
	metric := map[string]map[string]float64{
		"BenchmarkRemedyMTTR": {"mttr_p50_us": 1000},
	}
	violations := checkBudgets(current, alloc, metric)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want exactly 2", violations)
	}
	if !strings.Contains(violations[0], "3 allocs/op exceeds budget 0") {
		t.Fatalf("violations[0] = %q, want alloc overage", violations[0])
	}
	if !strings.Contains(violations[1], "mttr_p50_us = 1500 exceeds budget 1000") {
		t.Fatalf("violations[1] = %q, want metric overage", violations[1])
	}
}

// TestCheckBudgetsCleanPass: everything within budget means zero
// violations — the gate only bites on regressions.
func TestCheckBudgetsCleanPass(t *testing.T) {
	current := map[string]Result{
		"BenchmarkFabricFlowChurn/flows=100000":  {AllocsPerOp: 16},
		"BenchmarkFabricComponentSolve/serial":   {AllocsPerOp: 0},
		"BenchmarkFabricComponentSolve/parallel": {AllocsPerOp: 1},
	}
	alloc := map[string]int64{
		"BenchmarkFabricFlowChurn/flows=100000":  64,
		"BenchmarkFabricComponentSolve/serial":   8,
		"BenchmarkFabricComponentSolve/parallel": 32,
	}
	if v := checkBudgets(current, alloc, nil); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
}

// TestFabricBudgetsCoverAllTiers guards the budget table itself: every
// churn tier exercised by BenchmarkFabricFlowChurn and both component-
// solve flavors must carry a budget, so adding a tier to the benchmark
// without budgeting it is caught here rather than silently unguarded.
func TestFabricBudgetsCoverAllTiers(t *testing.T) {
	budgets := allocBudgetsByFile["BENCH_fabric.json"]
	want := []string{
		"BenchmarkFabricRecomputeSteadyState",
		"BenchmarkFabricFlowChurn/flows=100",
		"BenchmarkFabricFlowChurn/flows=1000",
		"BenchmarkFabricFlowChurn/flows=10000",
		"BenchmarkFabricFlowChurn/flows=100000",
		"BenchmarkFabricFlowChurn/flows=1000000",
		"BenchmarkFabricComponentSolve/serial",
		"BenchmarkFabricComponentSolve/parallel",
	}
	for _, name := range want {
		if _, ok := budgets[name]; !ok {
			t.Errorf("BENCH_fabric.json budget missing for %s", name)
		}
	}
}
