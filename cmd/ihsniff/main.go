// Command ihsniff is the intra-host wireshark of §3.1: it runs a
// co-location scenario on the simulated host and captures the
// transactions crossing the fabric, with src/dst/tenant/link/lost
// filters.
//
// Usage:
//
//	ihsniff -duration 1ms -tenant kv [-link pcieswitch0->nic0] [-lost]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	if cli.MaybeVersion("ihsniff", os.Args[1:]) {
		return
	}
	var common cli.Common
	common.Register()
	dur := flag.Duration("duration", time.Millisecond, "capture window (virtual time)")
	tenant := flag.String("tenant", "", "filter: tenant")
	src := flag.String("src", "", "filter: source component")
	dst := flag.String("dst", "", "filter: destination component")
	link := flag.String("link", "", "filter: traverses directed link")
	lost := flag.Bool("lost", false, "filter: lost transactions only")
	max := flag.Int("max", 20, "max records to print")
	flag.Parse()

	fab, err := common.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihsniff: %v\n", err)
		os.Exit(1)
	}
	// Generate observable traffic: a KV tenant issuing GETs.
	if _, err := workload.StartKV(fab, workload.DefaultKVConfig("kv")); err != nil {
		fmt.Fprintf(os.Stderr, "ihsniff: %v\n", err)
		os.Exit(1)
	}
	sn, err := diag.StartSniff(fab, diag.SniffFilter{
		Tenant: fabric.TenantID(*tenant),
		Src:    topology.CompID(*src), Dst: topology.CompID(*dst),
		Link: topology.LinkID(*link), LostOnly: *lost,
	}, 4096)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihsniff: %v\n", err)
		os.Exit(1)
	}
	fab.Engine().RunFor(simtime.Duration(*dur))
	sn.Stop()
	seen, matched := sn.Counts()
	fmt.Printf("captured %d of %d transactions in %v of virtual time\n", matched, seen, *dur)
	for i, r := range sn.Captured() {
		if i >= *max {
			fmt.Printf("  ... %d more\n", int(matched)-*max)
			break
		}
		status := fmt.Sprintf("rtt=%v", r.RTT)
		if r.Lost {
			status = "LOST at " + string(r.LostAt)
		}
		fmt.Printf("  %-12v %-8s %-24s -> %-24s req=%-6d resp=%-6d %s\n",
			r.Sent, r.Tenant, r.Src, r.Dst, r.ReqBytes, r.RespBytes, status)
	}
}
