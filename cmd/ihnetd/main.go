// Command ihnetd is the manageable intra-host network daemon: it runs
// the full manager (monitor + anomaly platform + arbiter) over a
// simulated host and serves the JSON control plane of internal/httpapi.
//
// Virtual time advances continuously by default (1 ms of virtual time
// per 10 ms of wall time); pass -autoadvance=0 to drive time only via
// POST /api/advance for fully deterministic interaction.
//
// Usage:
//
//	ihnetd -addr :8080 -preset two-socket
//	curl localhost:8080/api/report
//	curl -X POST localhost:8080/api/tenants -d '{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":80}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	preset := flag.String("preset", "two-socket",
		"topology preset: "+strings.Join(topology.PresetNames(), ", "))
	seed := flag.Int64("seed", 1, "simulation seed")
	auto := flag.Duration("autoadvance", time.Millisecond,
		"virtual time advanced per 10ms of wall time (0 = manual only)")
	flag.Parse()

	build, ok := topology.Presets[*preset]
	if !ok {
		fmt.Fprintf(os.Stderr, "ihnetd: unknown preset %q\n", *preset)
		os.Exit(1)
	}
	opts := core.DefaultOptions()
	opts.Seed = *seed
	mgr, err := core.New(build(), opts)
	if err != nil {
		log.Fatalf("ihnetd: %v", err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatalf("ihnetd: %v", err)
	}
	srv := httpapi.New(mgr)
	if *auto > 0 {
		go func() {
			ticker := time.NewTicker(10 * time.Millisecond)
			defer ticker.Stop()
			for range ticker.C {
				srv.Advance(simtime.Duration(*auto))
			}
		}()
	}
	log.Printf("ihnetd: managing %q host on %s (auto-advance %v/10ms)", *preset, *addr, *auto)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
