// Command ihnetd is the manageable intra-host network daemon: it runs
// the full manager (monitor + anomaly platform + arbiter) over a
// simulated host and serves the JSON control plane of internal/httpapi
// under /api/v1/, plus the observability surface: Prometheus metrics
// at /metrics, the event trace at /api/v1/trace/events, the live
// event stream (SSE) at /api/v1/events, liveness with per-subsystem
// status at /api/v1/healthz, and Go profiling at /debug/pprof/.
// Pre-v1 /api/... paths answer with 308 redirects to their /api/v1/
// successors. A structured access log (one logfmt line per request,
// disable with -access-log=false) mints per-request correlation IDs
// that double as the root spans of journaled commands. In fleet mode
// the merged roll-up is at /api/v1/fleet/metrics/rollup and the
// fleet-wide host-tagged stream at /api/v1/fleet/events.
//
// Virtual time advances continuously by default (1 ms of virtual time
// per 10 ms of wall time); pass -autoadvance=0 to drive time only via
// POST /api/v1/advance for fully deterministic interaction.
//
// Pass -remedy to arm the closed-loop remediation controller: it
// subscribes to anomaly verdicts, plans against live fabric state, and
// executes repairs through the journaled command path, stepping once
// after every advance. Its status and MTTR percentiles are served at
// /api/v1/remedy/status and the rule table is live-editable via
// /api/v1/remedy/policy (seed it from a file with -remedy-policy). In
// fleet mode each host gets its own controller, stepped between epoch
// barriers, with the aggregate at /api/v1/fleet/remedy/status.
//
// Every mutating command is recorded through internal/snap, so the
// daemon's state can be checkpointed (POST /api/v1/snapshot), rolled
// back (POST /api/v1/restore), downloaded as a replayable command
// journal (GET /api/v1/journal), or resumed at startup from a snapshot
// file via -restore.
//
// Pass -store-dir to make that journal durable: every command is
// appended to an on-disk write-ahead log (crash-safe, checksummed;
// -store-sync picks fsync-per-command vs page-cache durability) and
// POST /api/v1/snapshot also lands a content-addressed incremental
// checkpoint in the store. A daemon restarted with the same -store-dir
// recovers the newest loadable checkpoint plus the journal tail and
// resumes byte-identical state — GET /api/v1/state/hash (and its fleet
// variants) is the fingerprint to compare. In fleet mode each host
// stores under hosts/<name>, all sharing one deduplicated chunk pool.
//
// Pass -auth-token-file to require a static bearer token
// (Authorization: Bearer <token> or X-API-Token) on every request;
// loopback clients stay exempt unless -auth-loopback=false. Denials
// are 401s in the typed envelope, counted in
// ihnet_http_auth_denied_total.
//
// Fleet mode: -hosts-dir boots one recording host per *.json host spec
// in the directory (or -synth-hosts=N boots N deterministic synthetic
// hosts) and serves the fleet control plane instead — placement,
// migration, rebalancing, and per-host checkpoints under
// /api/v1/fleet/. The hosts advance on the sharded epoch engine:
// -fleet-shards independent shard groups (default one per 64 hosts),
// each with its own worker pool (-fleet-workers goroutines per shard)
// and inner epoch loop (barriers every -fleet-epoch of virtual time),
// synchronized only at coarse outer epochs — so 10k hosts advance
// without a global barrier per millisecond while staying bit-for-bit
// deterministic. Shard stats are at /api/v1/fleet/shards.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the auto-advance
// loop drains first (no advance is cut off mid-event), then the HTTP
// server finishes in-flight requests under a timeout.
//
// Usage:
//
//	ihnetd -addr :8080 -preset two-socket
//	curl localhost:8080/api/v1/report
//	curl localhost:8080/metrics
//	curl -X POST localhost:8080/api/v1/tenants -d '{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":80}]}'
//
//	ihnetd -addr :8080 -hosts-dir hosts/
//	curl localhost:8080/api/v1/fleet/hosts
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/store"
	"repro/internal/topology"
)

func main() {
	if cli.MaybeVersion("ihnetd", os.Args[1:]) {
		return
	}
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	preset := flag.String("preset", "two-socket",
		"topology preset: "+strings.Join(topology.PresetNames(), ", "))
	seed := flag.Int64("seed", 1, "simulation seed")
	auto := flag.Duration("autoadvance", time.Millisecond,
		"virtual time advanced per 10ms of wall time (0 = manual only)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second,
		"grace period for in-flight requests on SIGINT/SIGTERM")
	restore := flag.String("restore", "",
		"snapshot file to resume from (its config overrides -preset/-seed)")
	hostsDir := flag.String("hosts-dir", "",
		"directory of *.json host specs: boot a fleet instead of a single host")
	synthHosts := flag.Int("synth-hosts", 0,
		"boot a fleet of N deterministic synthetic recording hosts (exclusive with -hosts-dir)")
	fleetWorkers := flag.Int("fleet-workers", 0,
		"fleet runner goroutines per shard (0 = GOMAXPROCS/shards)")
	fleetShards := flag.Int("fleet-shards", 0,
		"fleet shard groups, synchronized at outer epochs (0 = one per 64 hosts)")
	fleetEpoch := flag.Duration("fleet-epoch", time.Millisecond,
		"virtual-time barrier interval between inner fleet epochs")
	accessLog := flag.Bool("access-log", true,
		"log one structured line per request (request IDs are minted either way)")
	remedyOn := flag.Bool("remedy", false,
		"run the closed-loop remediation controller (stepped on every advance)")
	remedyPolicy := flag.String("remedy-policy", "",
		"policy file for -remedy (default: built-in rule table)")
	storeDir := flag.String("store-dir", "",
		"durable store directory: journal every command to disk and recover state across restarts")
	storeSync := flag.String("store-sync", string(store.SyncOS),
		`WAL durability for -store-dir: "always" (fsync per command, survives power loss) or "os" (page cache, survives process kills)`)
	authTokenFile := flag.String("auth-token-file", "",
		"file holding the static bearer token; when set, requests must present it (Authorization: Bearer or X-API-Token)")
	authLoopback := flag.Bool("auth-loopback", true,
		"exempt loopback (127.0.0.1/::1) requests from bearer-token auth")
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	// Resolve store and auth configuration up front so a bad flag fails
	// fast, before any host state exists.
	syncPolicy, err := store.ParseSyncPolicy(*storeSync)
	if err != nil {
		log.Fatalf("ihnetd: -store-sync: %v", err)
	}
	storeOpts := store.Options{Sync: syncPolicy}
	authToken := ""
	if *authTokenFile != "" {
		if authToken, err = httpapi.LoadTokenFile(*authTokenFile); err != nil {
			log.Fatalf("ihnetd: -auth-token-file: %v", err)
		}
	}

	// Load the remediation policy up front so a bad file fails fast,
	// before any host state exists.
	pol := remedy.DefaultPolicy()
	if *remedyPolicy != "" {
		if !*remedyOn {
			log.Fatalf("ihnetd: -remedy-policy requires -remedy")
		}
		data, err := os.ReadFile(*remedyPolicy)
		if err != nil {
			log.Fatalf("ihnetd: %v", err)
		}
		if pol, err = remedy.ParsePolicy(data); err != nil {
			log.Fatalf("ihnetd: %s: %v", *remedyPolicy, err)
		}
	}

	// handler/advance/stopHosts abstract over the two modes so the
	// serving and shutdown machinery below is shared; authReg is where
	// the auth middleware lands its denial counters.
	var handler http.Handler
	var advance func(simtime.Duration)
	var stopHosts func()
	var authReg *obs.Registry

	if *hostsDir != "" && *synthHosts > 0 {
		log.Fatalf("ihnetd: -hosts-dir and -synth-hosts are mutually exclusive")
	}
	if *hostsDir != "" || *synthHosts > 0 {
		var fl *fleet.Fleet
		var err error
		if *synthHosts > 0 {
			fl, err = fleet.Synth(fleet.SynthSpec{
				Hosts: *synthHosts, Preset: *preset, Seed: *seed,
				Record: true, Workload: true,
			})
		} else {
			opts := core.DefaultOptions()
			opts.Seed = *seed
			fl, err = fleet.LoadDir(*hostsDir, opts)
		}
		if err != nil {
			log.Fatalf("ihnetd: %v", err)
		}
		// Durable fleet store: every recording host gets its own
		// journal/snapshot store under hosts/<name>, all sharing one
		// content-addressed chunk pool. A host whose store already has
		// state is recovered from it — the in-memory host the fleet
		// loader just built is discarded — so a killed daemon restarts
		// exactly where the journal ends.
		var fstore *store.FleetStore
		if *storeDir != "" {
			if fstore, err = store.OpenFleet(*storeDir, storeOpts); err != nil {
				log.Fatalf("ihnetd: open fleet store: %v", err)
			}
			recovered, booted := 0, 0
			for _, h := range fl.Hosts() {
				if h.Sess == nil {
					continue
				}
				hs, err := fstore.Host(h.Name)
				if err != nil {
					log.Fatalf("ihnetd: host store %s: %v", h.Name, err)
				}
				if hs.HasState() {
					sess, rep, err := hs.Recover()
					if err != nil {
						log.Fatalf("ihnetd: recover host %s: %v", h.Name, err)
					}
					old := h.Mgr
					h.Sess = sess
					h.Mgr = sess.Manager()
					old.Stop()
					recovered++
					if rep.SnapshotsSkipped > 0 || rep.TruncatedBytes > 0 {
						log.Printf("ihnetd: host %s recovered with damage: %d checkpoints skipped, %d WAL bytes truncated",
							h.Name, rep.SnapshotsSkipped, rep.TruncatedBytes)
					}
				} else {
					if err := hs.Bootstrap(h.Sess); err != nil {
						log.Fatalf("ihnetd: bootstrap host %s: %v", h.Name, err)
					}
					booted++
				}
			}
			log.Printf("ihnetd: durable store %s (sync=%s): %d hosts recovered, %d bootstrapped",
				*storeDir, syncPolicy, recovered, booted)
		}
		fsrv := httpapi.NewFleetServer(fl, fleet.ShardConfig{
			Shards:  *fleetShards,
			Workers: *fleetWorkers,
			Epoch:   simtime.Duration(*fleetEpoch),
		})
		if fstore != nil {
			fsrv.SetFleetStore(fstore)
		}
		handler = fsrv.Handler()
		advance = fsrv.Advance
		authReg = fsrv.Registry()
		var fc *remedy.FleetController
		if *remedyOn {
			var err error
			if fc, err = remedy.NewFleet(fl, fsrv.Runner(), pol); err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
			fsrv.SetRemedy(fc)
			log.Printf("ihnetd: remediation controllers armed on %d hosts", len(fl.Hosts()))
		}
		stopHosts = func() {
			if fc != nil {
				fc.Close()
			}
			for _, h := range fl.Hosts() {
				h.Mgr.Stop()
			}
			if fstore != nil {
				if err := fstore.Close(); err != nil {
					log.Printf("ihnetd: close fleet store: %v", err)
				}
			}
			log.Printf("ihnetd: stopped %d fleet hosts", len(fl.Hosts()))
		}
		source := *hostsDir
		if *synthHosts > 0 {
			source = fmt.Sprintf("synth(seed=%d)", *seed)
		}
		log.Printf("ihnetd: managing fleet of %d hosts from %s on %s (shards=%d, workers/shard=%d, epoch=%v, auto-advance %v/10ms)",
			len(fl.Hosts()), source, *addr, fsrv.Runner().Shards(), fsrv.Workers(), *fleetEpoch, *auto)
	} else {
		var st *store.Store
		if *storeDir != "" {
			if st, err = store.Open(*storeDir, storeOpts); err != nil {
				log.Fatalf("ihnetd: open store: %v", err)
			}
		}
		var sess *snap.Session
		switch {
		case *restore != "":
			f, err := os.Open(*restore)
			if err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
			sess, err = snap.Restore(f)
			f.Close()
			if err != nil {
				log.Fatalf("ihnetd: restore %s: %v", *restore, err)
			}
			log.Printf("ihnetd: restored %s: %d journal entries replayed to t=%v",
				*restore, sess.Journal().Len(), sess.Now())
			// An explicit -restore wins over whatever the store holds:
			// rewrite the store to describe the restored session.
			if st != nil {
				if err := st.Reset(sess.Config(), sess.Journal().Entries); err != nil {
					log.Fatalf("ihnetd: rewrite store from %s: %v", *restore, err)
				}
				st.Resume(sess)
			}
		case st != nil && st.HasState():
			// The store's config.json pins preset and seed; -preset and
			// -seed are ignored on a recovery boot.
			var rep store.RecoveryReport
			if sess, rep, err = st.Recover(); err != nil {
				log.Fatalf("ihnetd: recover from %s: %v", *storeDir, err)
			}
			log.Printf("ihnetd: recovered from %s: checkpoint seq %d + %d replayed journal records to t=%v (hash %s)",
				*storeDir, rep.SnapshotSeq, rep.Replayed, sess.Now(), rep.StateHash)
			if rep.SnapshotsSkipped > 0 || rep.TruncatedBytes > 0 {
				log.Printf("ihnetd: recovery found damage: %d checkpoints skipped, %d WAL bytes truncated, %d orphan segments",
					rep.SnapshotsSkipped, rep.TruncatedBytes, rep.OrphanSegments)
			}
		default:
			if _, ok := topology.Presets[*preset]; !ok {
				fmt.Fprintf(os.Stderr, "ihnetd: unknown preset %q\n", *preset)
				os.Exit(1)
			}
			opts := core.DefaultOptions()
			opts.Seed = *seed
			var err error
			sess, err = snap.NewSession(snap.Config{Preset: *preset, Options: opts})
			if err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
			if st != nil {
				if err := st.Bootstrap(sess); err != nil {
					log.Fatalf("ihnetd: bootstrap store: %v", err)
				}
				log.Printf("ihnetd: durable store bootstrapped at %s (sync=%s)", *storeDir, syncPolicy)
			}
		}
		srv := httpapi.NewWithSession(sess)
		if st != nil {
			srv.SetStore(st)
		}
		handler = srv.Handler()
		advance = srv.Advance
		authReg = sess.Manager().Obs().Registry
		var ctrl *remedy.Controller
		if *remedyOn {
			var err error
			ctrl, err = remedy.New(sess.Manager(), remedy.SessionActuator{Sess: sess},
				remedy.Options{Policy: pol})
			if err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
			srv.SetRemedy(ctrl)
			log.Printf("ihnetd: remediation controller armed (policy: %d rules)", len(pol.Rules))
		}
		stopHosts = func() {
			if ctrl != nil {
				ctrl.Close()
			}
			// Re-read the manager: a POST /api/v1/restore may have
			// swapped it.
			mgr := srv.Manager()
			mgr.Stop()
			if st != nil {
				if err := st.Close(); err != nil {
					log.Printf("ihnetd: close store: %v", err)
				}
			}
			log.Printf("ihnetd: stopped at virtual time %v after %d events",
				mgr.Engine().Now(), mgr.Engine().Processed)
		}
		log.Printf("ihnetd: managing %q host on %s (auto-advance %v/10ms; metrics at /metrics, pprof at /debug/pprof/)",
			*preset, *addr, *auto)
	}

	// The access log wraps the whole surface: every request gets a
	// correlation ID (minted or taken from X-Request-ID) that doubles
	// as the root span of the command it journals, so a log line joins
	// to journal entries and trace events on one key.
	logf := log.Printf
	if !*accessLog {
		logf = nil
	}
	// Auth sits inside the access log so denials are still logged (and
	// outside the mux so /metrics and pprof are covered too).
	if authToken != "" {
		handler = httpapi.Auth(handler, httpapi.AuthConfig{
			Token: authToken, TrustLoopback: *authLoopback, Registry: authReg,
		})
		log.Printf("ihnetd: bearer-token auth armed (loopback exempt: %v)", *authLoopback)
	}
	handler = httpapi.AccessLog(handler, logf)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Auto-advance loop: drains on shutdown so no advance is cut off
	// mid-event; advanceDone closes once the last advance returns.
	advanceDone := make(chan struct{})
	if *auto > 0 {
		go func() {
			defer close(advanceDone)
			ticker := time.NewTicker(10 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					advance(simtime.Duration(*auto))
				}
			}
		}()
	} else {
		close(advanceDone)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatalf("ihnetd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	log.Printf("ihnetd: signal received, draining (timeout %v)", *shutdownTimeout)
	<-advanceDone
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ihnetd: shutdown: %v", err)
	}
	stopHosts()
}
