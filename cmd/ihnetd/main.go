// Command ihnetd is the manageable intra-host network daemon: it runs
// the full manager (monitor + anomaly platform + arbiter) over a
// simulated host and serves the JSON control plane of internal/httpapi
// under /api/v1/, plus the observability surface: Prometheus metrics
// at /metrics, the event trace at /api/v1/trace/events, the live
// event stream (SSE) at /api/v1/events, liveness with per-subsystem
// status at /api/v1/healthz, and Go profiling at /debug/pprof/.
// Pre-v1 /api/... paths answer with 308 redirects to their /api/v1/
// successors. A structured access log (one logfmt line per request,
// disable with -access-log=false) mints per-request correlation IDs
// that double as the root spans of journaled commands. In fleet mode
// the merged roll-up is at /api/v1/fleet/metrics/rollup and the
// fleet-wide host-tagged stream at /api/v1/fleet/events.
//
// Virtual time advances continuously by default (1 ms of virtual time
// per 10 ms of wall time); pass -autoadvance=0 to drive time only via
// POST /api/v1/advance for fully deterministic interaction.
//
// Pass -remedy to arm the closed-loop remediation controller: it
// subscribes to anomaly verdicts, plans against live fabric state, and
// executes repairs through the journaled command path, stepping once
// after every advance. Its status and MTTR percentiles are served at
// /api/v1/remedy/status and the rule table is live-editable via
// /api/v1/remedy/policy (seed it from a file with -remedy-policy). In
// fleet mode each host gets its own controller, stepped between epoch
// barriers, with the aggregate at /api/v1/fleet/remedy/status.
//
// Every mutating command is recorded through internal/snap, so the
// daemon's state can be checkpointed (POST /api/v1/snapshot), rolled
// back (POST /api/v1/restore), downloaded as a replayable command
// journal (GET /api/v1/journal), or resumed at startup from a snapshot
// file via -restore.
//
// Fleet mode: -hosts-dir boots one recording host per *.json host spec
// in the directory (or -synth-hosts=N boots N deterministic synthetic
// hosts) and serves the fleet control plane instead — placement,
// migration, rebalancing, and per-host checkpoints under
// /api/v1/fleet/. The hosts advance on the sharded epoch engine:
// -fleet-shards independent shard groups (default one per 64 hosts),
// each with its own worker pool (-fleet-workers goroutines per shard)
// and inner epoch loop (barriers every -fleet-epoch of virtual time),
// synchronized only at coarse outer epochs — so 10k hosts advance
// without a global barrier per millisecond while staying bit-for-bit
// deterministic. Shard stats are at /api/v1/fleet/shards.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the auto-advance
// loop drains first (no advance is cut off mid-event), then the HTTP
// server finishes in-flight requests under a timeout.
//
// Usage:
//
//	ihnetd -addr :8080 -preset two-socket
//	curl localhost:8080/api/v1/report
//	curl localhost:8080/metrics
//	curl -X POST localhost:8080/api/v1/tenants -d '{"tenant":"kv","targets":[{"src":"nic0","dst":"memory:socket0","rate_gbps":80}]}'
//
//	ihnetd -addr :8080 -hosts-dir hosts/
//	curl localhost:8080/api/v1/fleet/hosts
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/httpapi"
	"repro/internal/remedy"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

func main() {
	if cli.MaybeVersion("ihnetd", os.Args[1:]) {
		return
	}
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	preset := flag.String("preset", "two-socket",
		"topology preset: "+strings.Join(topology.PresetNames(), ", "))
	seed := flag.Int64("seed", 1, "simulation seed")
	auto := flag.Duration("autoadvance", time.Millisecond,
		"virtual time advanced per 10ms of wall time (0 = manual only)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 5*time.Second,
		"grace period for in-flight requests on SIGINT/SIGTERM")
	restore := flag.String("restore", "",
		"snapshot file to resume from (its config overrides -preset/-seed)")
	hostsDir := flag.String("hosts-dir", "",
		"directory of *.json host specs: boot a fleet instead of a single host")
	synthHosts := flag.Int("synth-hosts", 0,
		"boot a fleet of N deterministic synthetic recording hosts (exclusive with -hosts-dir)")
	fleetWorkers := flag.Int("fleet-workers", 0,
		"fleet runner goroutines per shard (0 = GOMAXPROCS/shards)")
	fleetShards := flag.Int("fleet-shards", 0,
		"fleet shard groups, synchronized at outer epochs (0 = one per 64 hosts)")
	fleetEpoch := flag.Duration("fleet-epoch", time.Millisecond,
		"virtual-time barrier interval between inner fleet epochs")
	accessLog := flag.Bool("access-log", true,
		"log one structured line per request (request IDs are minted either way)")
	remedyOn := flag.Bool("remedy", false,
		"run the closed-loop remediation controller (stepped on every advance)")
	remedyPolicy := flag.String("remedy-policy", "",
		"policy file for -remedy (default: built-in rule table)")
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	// Load the remediation policy up front so a bad file fails fast,
	// before any host state exists.
	pol := remedy.DefaultPolicy()
	if *remedyPolicy != "" {
		if !*remedyOn {
			log.Fatalf("ihnetd: -remedy-policy requires -remedy")
		}
		data, err := os.ReadFile(*remedyPolicy)
		if err != nil {
			log.Fatalf("ihnetd: %v", err)
		}
		if pol, err = remedy.ParsePolicy(data); err != nil {
			log.Fatalf("ihnetd: %s: %v", *remedyPolicy, err)
		}
	}

	// handler/advance/stopHosts abstract over the two modes so the
	// serving and shutdown machinery below is shared.
	var handler http.Handler
	var advance func(simtime.Duration)
	var stopHosts func()

	if *hostsDir != "" && *synthHosts > 0 {
		log.Fatalf("ihnetd: -hosts-dir and -synth-hosts are mutually exclusive")
	}
	if *hostsDir != "" || *synthHosts > 0 {
		var fl *fleet.Fleet
		var err error
		if *synthHosts > 0 {
			fl, err = fleet.Synth(fleet.SynthSpec{
				Hosts: *synthHosts, Preset: *preset, Seed: *seed,
				Record: true, Workload: true,
			})
		} else {
			opts := core.DefaultOptions()
			opts.Seed = *seed
			fl, err = fleet.LoadDir(*hostsDir, opts)
		}
		if err != nil {
			log.Fatalf("ihnetd: %v", err)
		}
		fsrv := httpapi.NewFleetServer(fl, fleet.ShardConfig{
			Shards:  *fleetShards,
			Workers: *fleetWorkers,
			Epoch:   simtime.Duration(*fleetEpoch),
		})
		handler = fsrv.Handler()
		advance = fsrv.Advance
		var fc *remedy.FleetController
		if *remedyOn {
			var err error
			if fc, err = remedy.NewFleet(fl, fsrv.Runner(), pol); err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
			fsrv.SetRemedy(fc)
			log.Printf("ihnetd: remediation controllers armed on %d hosts", len(fl.Hosts()))
		}
		stopHosts = func() {
			if fc != nil {
				fc.Close()
			}
			for _, h := range fl.Hosts() {
				h.Mgr.Stop()
			}
			log.Printf("ihnetd: stopped %d fleet hosts", len(fl.Hosts()))
		}
		source := *hostsDir
		if *synthHosts > 0 {
			source = fmt.Sprintf("synth(seed=%d)", *seed)
		}
		log.Printf("ihnetd: managing fleet of %d hosts from %s on %s (shards=%d, workers/shard=%d, epoch=%v, auto-advance %v/10ms)",
			len(fl.Hosts()), source, *addr, fsrv.Runner().Shards(), fsrv.Workers(), *fleetEpoch, *auto)
	} else {
		var sess *snap.Session
		if *restore != "" {
			f, err := os.Open(*restore)
			if err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
			sess, err = snap.Restore(f)
			f.Close()
			if err != nil {
				log.Fatalf("ihnetd: restore %s: %v", *restore, err)
			}
			log.Printf("ihnetd: restored %s: %d journal entries replayed to t=%v",
				*restore, sess.Journal().Len(), sess.Now())
		} else {
			if _, ok := topology.Presets[*preset]; !ok {
				fmt.Fprintf(os.Stderr, "ihnetd: unknown preset %q\n", *preset)
				os.Exit(1)
			}
			opts := core.DefaultOptions()
			opts.Seed = *seed
			var err error
			sess, err = snap.NewSession(snap.Config{Preset: *preset, Options: opts})
			if err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
		}
		srv := httpapi.NewWithSession(sess)
		handler = srv.Handler()
		advance = srv.Advance
		var ctrl *remedy.Controller
		if *remedyOn {
			var err error
			ctrl, err = remedy.New(sess.Manager(), remedy.SessionActuator{Sess: sess},
				remedy.Options{Policy: pol})
			if err != nil {
				log.Fatalf("ihnetd: %v", err)
			}
			srv.SetRemedy(ctrl)
			log.Printf("ihnetd: remediation controller armed (policy: %d rules)", len(pol.Rules))
		}
		stopHosts = func() {
			if ctrl != nil {
				ctrl.Close()
			}
			// Re-read the manager: a POST /api/v1/restore may have
			// swapped it.
			mgr := srv.Manager()
			mgr.Stop()
			log.Printf("ihnetd: stopped at virtual time %v after %d events",
				mgr.Engine().Now(), mgr.Engine().Processed)
		}
		log.Printf("ihnetd: managing %q host on %s (auto-advance %v/10ms; metrics at /metrics, pprof at /debug/pprof/)",
			*preset, *addr, *auto)
	}

	// The access log wraps the whole surface: every request gets a
	// correlation ID (minted or taken from X-Request-ID) that doubles
	// as the root span of the command it journals, so a log line joins
	// to journal entries and trace events on one key.
	logf := log.Printf
	if !*accessLog {
		logf = nil
	}
	handler = httpapi.AccessLog(handler, logf)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Auto-advance loop: drains on shutdown so no advance is cut off
	// mid-event; advanceDone closes once the last advance returns.
	advanceDone := make(chan struct{})
	if *auto > 0 {
		go func() {
			defer close(advanceDone)
			ticker := time.NewTicker(10 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					advance(simtime.Duration(*auto))
				}
			}
		}()
	} else {
		close(advanceDone)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatalf("ihnetd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	log.Printf("ihnetd: signal received, draining (timeout %v)", *shutdownTimeout)
	<-advanceDone
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ihnetd: shutdown: %v", err)
	}
	stopHosts()
}
