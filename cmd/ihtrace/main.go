// Command ihtrace is the intra-host traceroute of §3.1: it walks the
// current path between two components hop by hop and attributes
// round-trip latency to each fabric element, so a silently degraded
// switch or link stands out.
//
// Usage:
//
//	ihtrace -src gpu0 -dst socket0.dimm0_0 [-degrade pcieswitch0->nic0]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/diag"
	"repro/internal/topology"
)

func main() {
	if cli.MaybeVersion("ihtrace", os.Args[1:]) {
		return
	}
	var common cli.Common
	common.Register()
	src := flag.String("src", "gpu0", "trace source component")
	dst := flag.String("dst", "socket0.dimm0_0", "trace destination component")
	size := flag.Int64("size", 64, "probe payload bytes each way")
	flag.Parse()

	fab, err := common.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihtrace: %v\n", err)
		os.Exit(1)
	}
	rep, err := diag.RunTrace(fab, topology.CompID(*src), topology.CompID(*dst), *size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihtrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep)
}
