// Command ihperf is the intra-host iperf of §3.1: it measures the
// achievable bandwidth between two components, identifies the
// bottleneck hop, and — run as a tenant — observes that tenant's
// virtualized share.
//
// Usage:
//
//	ihperf -src gpu0 -dst nic0 [-duration 1ms] [-tenant kv] [-loopback]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/diag"
	"repro/internal/fabric"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	if cli.MaybeVersion("ihperf", os.Args[1:]) {
		return
	}
	var common cli.Common
	common.Register()
	src := flag.String("src", "gpu0", "traffic source component")
	dst := flag.String("dst", "nic0", "traffic destination component")
	dur := flag.Duration("duration", time.Millisecond, "measurement window (virtual time)")
	tenant := flag.String("tenant", "", "run as this tenant (empty = system)")
	flag.Parse()

	fab, err := common.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihperf: %v\n", err)
		os.Exit(1)
	}
	rep, err := diag.RunPerf(fab, topology.CompID(*src), topology.CompID(*dst), diag.PerfOptions{
		Duration: simtime.Duration(*dur), Tenant: fabric.TenantID(*tenant),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihperf: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Printf("  path: %s\n", rep.Path)
	fmt.Printf("  efficiency vs path capacity: %.1f%%\n", 100*float64(rep.Achieved)/float64(rep.PathCapacity))
}
