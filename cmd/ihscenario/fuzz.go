package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/arbiter"
	"repro/internal/chaos"
	"repro/internal/simtime"
)

// runFuzz is the `ihscenario fuzz` subcommand: seeded chaos runs with
// the cross-layer invariant oracle. Exit status 1 means at least one
// seed violated an invariant; each violation leaves a JSON artifact
// that re-derives it deterministically (`-replay`).
func runFuzz(args []string) {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "first seed")
	seeds := fs.Int("seeds", 1, "number of consecutive seeds to run")
	events := fs.Int("events", 500, "injected events per seed")
	dur := fs.Duration("dur", 25*time.Millisecond, "virtual duration per seed")
	preset := fs.String("preset", "two-socket", "topology preset under test")
	mode := fs.String("mode", "work-conserving", "arbiter mode: strict or work-conserving")
	hosts := fs.Int("fleet", 0, "run fleet chaos over this many hosts (0 = single host)")
	workers := fs.Int("workers", 0, "fleet runner workers (0 = GOMAXPROCS)")
	out := fs.String("out", "chaos-artifacts", "directory for violation artifacts")
	replay := fs.String("replay", "", "re-check a violation artifact instead of fuzzing")
	minimize := fs.Bool("minimize", true, "shrink violating journals before writing artifacts")
	verbose := fs.Bool("v", false, "print per-seed op counts")
	vsController := fs.Bool("vs-controller", false,
		"arm the remediation controller against the chaos schedule and grade its MTTR")
	remedyDeadline := fs.Duration("remedy-deadline", 2*time.Millisecond,
		"virtual deadline for each eligible fault to be remediated (-vs-controller)")
	remedyRatio := fs.Float64("remedy-ratio", 0.95,
		"minimum remediated/eligible fraction per seed (-vs-controller)")
	fs.Parse(args)

	if *replay != "" {
		replayArtifact(*replay)
		return
	}

	failed := 0
	for i := 0; i < *seeds; i++ {
		s := *seed + int64(i)
		cfg := chaos.Config{
			Seed:           s,
			Events:         *events,
			Duration:       simtime.Duration(*dur),
			Preset:         *preset,
			Mode:           arbiter.Mode(*mode),
			Hosts:          *hosts,
			Workers:        *workers,
			VsController:   *vsController,
			RemedyDeadline: simtime.Duration(*remedyDeadline),
		}
		start := time.Now()
		res, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihscenario fuzz: seed %d: %v\n", s, err)
			os.Exit(1)
		}
		if res.Violation == nil {
			fmt.Printf("PASS  seed %-4d %d events (%d rejected), %d snapshot checks, %v virtual, %v wall%s\n",
				s, res.Events, res.Rejected, res.SnapshotChecks, res.FinalTime,
				time.Since(start).Round(time.Millisecond), remedySuffix(res.Remedy))
			if res.Remedy != nil && res.Remedy.Ratio() < *remedyRatio {
				failed++
				fmt.Printf("FAIL  seed %-4d remediated %d/%d eligible (< %.0f%%), missed: %v\n",
					s, res.Remedy.Remediated, res.Remedy.Eligible, *remedyRatio*100, res.Remedy.Missed)
			}
		} else {
			failed++
			fmt.Printf("FAIL  seed %-4d %v\n", s, res.Violation)
			path := writeArtifact(*out, res, cfg, *minimize)
			if path != "" {
				fmt.Printf("      repro: ihscenario fuzz -replay %s\n", path)
				fmt.Printf("      or:    ihscenario fuzz -seed %d -events %d -dur %v -preset %s%s\n",
					s, *events, *dur, *preset, fleetSuffix(*hosts))
			}
		}
		if *verbose {
			for op, n := range res.Counts {
				fmt.Printf("      %-16s %d\n", op, n)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("%d/%d seeds violated an invariant\n", failed, *seeds)
		os.Exit(1)
	}
}

// remedySuffix renders the controller's report card for the PASS line.
func remedySuffix(r *chaos.RemedyReport) string {
	if r == nil {
		return ""
	}
	return fmt.Sprintf(", remediated %d/%d eligible (mttr p50/p99 %.0f/%.0f us)",
		r.Remediated, r.Eligible, r.MTTRp50Us, r.MTTRp99Us)
}

func fleetSuffix(hosts int) string {
	if hosts > 1 {
		return fmt.Sprintf(" -fleet %d", hosts)
	}
	return ""
}

// writeArtifact persists the violating run (optionally minimized) and
// returns the artifact path ("" on write failure).
func writeArtifact(dir string, res *chaos.Result, cfg chaos.Config, minimize bool) string {
	ocfg := cfg.Oracle
	if ocfg == (chaos.OracleConfig{}) {
		ocfg = chaos.DefaultOracleConfig()
	}
	art := chaos.NewArtifact(res, ocfg)
	if minimize {
		if j, v, err := chaos.Minimize(res.Config, res.Journal, ocfg, 300); err == nil {
			art.Journal, art.Violation = j, v
			fmt.Printf("      minimized journal: %d -> %d entries\n", res.Journal.Len(), j.Len())
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ihscenario fuzz: %v\n", err)
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.json", res.Seed))
	if err := chaos.WriteArtifact(path, art); err != nil {
		fmt.Fprintf(os.Stderr, "ihscenario fuzz: %v\n", err)
		return ""
	}
	return path
}

// replayArtifact re-derives a violation from its artifact: same
// config, same journal, same oracle — same verdict, or the bug is
// fixed.
func replayArtifact(path string) {
	art, err := chaos.ReadArtifact(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihscenario fuzz: %v\n", err)
		os.Exit(1)
	}
	v, err := art.Recheck()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihscenario fuzz: replay: %v\n", err)
		os.Exit(1)
	}
	if v == nil {
		fmt.Printf("PASS  %s no longer violates (recorded: %v)\n", path, art.Violation)
		return
	}
	fmt.Printf("FAIL  %s reproduces: %v\n", path, v)
	os.Exit(1)
}
