// Command ihscenario runs declarative incident drills (see
// internal/scenario and the scenarios/ directory): it admits the
// spec's tenants, plays its workload/fault timeline against a managed
// host, and evaluates the assertions — the management plane's own
// regression harness.
//
// Usage:
//
//	ihscenario scenarios/silent-degradation.json
//	ihscenario scenarios/*.json
//	ihscenario -v scenarios/colocation-guarantee.json
//
// The fuzz subcommand runs seeded chaos schedules against the full
// manager stack under a cross-layer invariant oracle (see
// internal/chaos):
//
//	ihscenario fuzz -seed 1 -seeds 20 -events 500
//	ihscenario fuzz -fleet 4 -seed 7
//	ihscenario fuzz -replay chaos-artifacts/chaos-seed-7.json
//
// With -vs-controller the chaos schedule becomes the adversary of the
// closed-loop remediation controller: every eligible injected fault
// must be healed within -remedy-deadline of virtual time, the run
// fails unless at least -remedy-ratio of them are, and the PASS line
// reports the controller's MTTR percentiles:
//
//	ihscenario fuzz -vs-controller -seed 7 -remedy-deadline 2ms
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/scenario"
)

func main() {
	if cli.MaybeVersion("ihscenario", os.Args[1:]) {
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fuzz" {
		runFuzz(os.Args[2:])
		return
	}
	verbose := flag.Bool("v", false, "print the drill timeline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ihscenario [-v] <drill.json> ...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihscenario: %v\n", err)
			os.Exit(1)
		}
		spec, err := scenario.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihscenario: %s: %v\n", path, err)
			os.Exit(1)
		}
		res, err := scenario.Run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihscenario: %s: %v\n", path, err)
			os.Exit(1)
		}
		status := "PASS"
		if !res.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s  %s (%s)\n", status, res.Name, path)
		if *verbose {
			for _, line := range res.Timeline {
				fmt.Printf("      %s\n", line)
			}
		}
		for _, c := range res.Checks {
			mark := "ok"
			if !c.Passed {
				mark = "FAILED"
			}
			fmt.Printf("      %-28s %-8s %s\n", c.Assert.Kind, mark, c.Detail)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
