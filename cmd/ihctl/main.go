// Command ihctl is the operator's client for the ihnetd control
// plane: inspect topology and usage, admit/evict/verify tenants, read
// alerts and detections, run diagnostics, and advance virtual time —
// all over the daemon's JSON API.
//
// Usage:
//
//	ihctl [-addr host:port] <command> [args]
//
// Commands:
//
//	topology                       summarize the host
//	report                         per-link utilization + per-tenant usage
//	alerts                         monitor alerts (congestion, config drift)
//	detections                     anomaly detections with suspects
//	tenants                        list admitted tenants
//	admit <tenant> <src> <dst> <gbps>   admit a single-pipe tenant
//	evict <tenant>                 release a tenant's guarantees
//	verify <tenant>                check guarantees against reality
//	usage <tenant>                 the tenant's own virtual-link usage
//	ping <src> <dst>               intra-host ping via the daemon
//	trace <src> <dst>              intra-host traceroute via the daemon
//	perf <src> <dst> [tenant]      bandwidth probe via the daemon
//	advance <micros>               move virtual time forward
//	experiment <id>                run one experiment (E1..E12) server-side
//	snapshot [file]                checkpoint daemon state (default snapshot.json)
//	restore <file>                 roll the daemon back to a snapshot
//	journal [file]                 download the command journal (default stdout)
//	version                        print build information
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"

	"repro/cmd/internal/cli"
)

func main() {
	if cli.MaybeVersion("ihctl", os.Args[1:]) {
		return
	}
	addr := flag.String("addr", "127.0.0.1:8080", "ihnetd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "ihctl: need a command (see -h)")
		os.Exit(2)
	}
	c := client{base: "http://" + *addr}
	if err := c.dispatch(args); err != nil {
		fmt.Fprintf(os.Stderr, "ihctl: %v\n", err)
		os.Exit(1)
	}
}

type client struct{ base string }

func (c client) dispatch(args []string) error {
	cmd, rest := args[0], args[1:]
	need := func(n int, usage string) error {
		if len(rest) != n {
			return fmt.Errorf("usage: ihctl %s %s", cmd, usage)
		}
		return nil
	}
	switch cmd {
	case "topology":
		return c.get("/api/topology", prettyTopology)
	case "report":
		return c.get("/api/report", prettyReport)
	case "alerts":
		return c.get("/api/alerts", prettyJSON)
	case "detections":
		return c.get("/api/detections", prettyJSON)
	case "tenants":
		return c.get("/api/tenants", prettyJSON)
	case "admit":
		if err := need(4, "<tenant> <src> <dst> <gbps>"); err != nil {
			return err
		}
		gbps, err := strconv.ParseFloat(rest[3], 64)
		if err != nil {
			return fmt.Errorf("bad rate %q", rest[3])
		}
		body := map[string]any{
			"tenant": rest[0],
			"targets": []map[string]any{
				{"src": rest[1], "dst": rest[2], "rate_gbps": gbps},
			},
		}
		return c.post("/api/tenants", body, prettyJSON)
	case "evict":
		if err := need(1, "<tenant>"); err != nil {
			return err
		}
		return c.delete("/api/tenants/"+url.PathEscape(rest[0]), prettyJSON)
	case "verify":
		if err := need(1, "<tenant>"); err != nil {
			return err
		}
		return c.get("/api/tenants/"+url.PathEscape(rest[0])+"/verify", prettyJSON)
	case "usage":
		if err := need(1, "<tenant>"); err != nil {
			return err
		}
		return c.get("/api/tenants/"+url.PathEscape(rest[0])+"/usage", prettyJSON)
	case "ping":
		if err := need(2, "<src> <dst>"); err != nil {
			return err
		}
		return c.get("/api/diag/ping?src="+url.QueryEscape(rest[0])+"&dst="+url.QueryEscape(rest[1]), prettyJSON)
	case "trace":
		if err := need(2, "<src> <dst>"); err != nil {
			return err
		}
		return c.get("/api/diag/trace?src="+url.QueryEscape(rest[0])+"&dst="+url.QueryEscape(rest[1]), prettyJSON)
	case "perf":
		if len(rest) != 2 && len(rest) != 3 {
			return fmt.Errorf("usage: ihctl perf <src> <dst> [tenant]")
		}
		u := "/api/diag/perf?src=" + url.QueryEscape(rest[0]) + "&dst=" + url.QueryEscape(rest[1])
		if len(rest) == 3 {
			u += "&tenant=" + url.QueryEscape(rest[2])
		}
		return c.get(u, prettyJSON)
	case "advance":
		if err := need(1, "<micros>"); err != nil {
			return err
		}
		us, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad micros %q", rest[0])
		}
		return c.post("/api/advance", map[string]any{"micros": us}, prettyJSON)
	case "experiment":
		if err := need(1, "<id>"); err != nil {
			return err
		}
		return c.get("/api/experiments/"+url.PathEscape(rest[0]), prettyExperiment)
	case "snapshot":
		out := "snapshot.json"
		if len(rest) == 1 {
			out = rest[0]
		} else if len(rest) > 1 {
			return fmt.Errorf("usage: ihctl snapshot [file]")
		}
		return c.post("/api/snapshot", nil, toFile(out, "snapshot"))
	case "restore":
		if err := need(1, "<file>"); err != nil {
			return err
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		return c.postRaw("/api/restore", data, prettyJSON)
	case "journal":
		if len(rest) > 1 {
			return fmt.Errorf("usage: ihctl journal [file]")
		}
		if len(rest) == 1 {
			return c.get("/api/journal", toFile(rest[0], "journal"))
		}
		return c.get("/api/journal", prettyJSON)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// toFile renders a response body by writing it to a file, reporting
// what landed where.
func toFile(path, what string) func([]byte) error {
	return func(data []byte) error {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes) to %s\n", what, len(data), path)
		return nil
	}
}

func (c client) get(path string, render func([]byte) error) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	return c.finish(resp, render)
}

func (c client) post(path string, body any, render func([]byte) error) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.postRaw(path, data, render)
}

func (c client) postRaw(path string, data []byte, render func([]byte) error) error {
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return c.finish(resp, render)
}

func (c client) delete(path string, render func([]byte) error) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return c.finish(resp, render)
}

func (c client) finish(resp *http.Response, render func([]byte) error) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	return render(data)
}

func prettyJSON(data []byte) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		_, err = os.Stdout.Write(data)
		return err
	}
	buf.WriteByte('\n')
	_, err := buf.WriteTo(os.Stdout)
	return err
}

func prettyTopology(data []byte) error {
	var t struct {
		Name       string `json:"name"`
		Components []struct {
			Kind string `json:"kind"`
		} `json:"components"`
		Links []struct {
			Class string `json:"class"`
		} `json:"links"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return err
	}
	kinds := map[string]int{}
	for _, c := range t.Components {
		kinds[c.Kind]++
	}
	classes := map[string]int{}
	for _, l := range t.Links {
		classes[l.Class]++
	}
	fmt.Printf("host %q: %d components, %d links\n", t.Name, len(t.Components), len(t.Links))
	fmt.Printf("  components: %v\n  link classes: %v\n", kinds, classes)
	return nil
}

func prettyReport(data []byte) error {
	var r struct {
		VirtualTimeNs int64 `json:"virtual_time_ns"`
		Links         []struct {
			ID          string  `json:"id"`
			Utilization float64 `json:"utilization"`
		} `json:"links"`
		Tenants   map[string]map[string]float64 `json:"tenant_usage_bps"`
		Congested []string                      `json:"congested"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	fmt.Printf("virtual time: %dns\n", r.VirtualTimeNs)
	fmt.Printf("congested links: %v\n", r.Congested)
	fmt.Println("busiest links:")
	// Top 5 by utilization.
	for i := 0; i < 5; i++ {
		best, idx := -1.0, -1
		for j, l := range r.Links {
			if l.Utilization > best {
				best, idx = l.Utilization, j
			}
		}
		if idx < 0 {
			break
		}
		fmt.Printf("  %-48s %5.1f%%\n", r.Links[idx].ID, best*100)
		r.Links[idx].Utilization = -2
	}
	for t, usage := range r.Tenants {
		fmt.Printf("tenant %s: %v\n", t, usage)
	}
	return nil
}

func prettyExperiment(data []byte) error {
	var e struct {
		Rendered string `json:"rendered"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		return err
	}
	fmt.Print(e.Rendered)
	return nil
}
