// Command ihctl is the operator's client for the ihnetd control
// plane: inspect topology and usage, admit/evict/verify tenants, read
// alerts and detections, run diagnostics, advance virtual time, and —
// against a fleet daemon — place, migrate, and rebalance tenants
// across hosts. All traffic goes through internal/apiclient and the
// versioned /api/v1/ surface.
//
// Usage:
//
//	ihctl [-addr host:port] [-token t | -token-file f] <command> [args]
//
// Against a daemon started with -auth-token-file, pass the bearer
// token via -token, -token-file, or the IHNET_TOKEN environment
// variable.
//
// Single-host commands:
//
//	topology                       summarize the host
//	report                         per-link utilization + per-tenant usage
//	alerts                         monitor alerts (congestion, config drift)
//	detections                     anomaly detections with suspects
//	tenants                        list admitted tenants
//	admit <tenant> <src> <dst> <gbps>   admit a single-pipe tenant
//	evict <tenant>                 release a tenant's guarantees
//	verify <tenant>                check guarantees against reality
//	usage <tenant>                 the tenant's own virtual-link usage
//	ping <src> <dst>               intra-host ping via the daemon
//	trace <src> <dst>              intra-host traceroute via the daemon
//	perf <src> <dst> [tenant]      bandwidth probe via the daemon
//	advance <micros>               move virtual time forward
//	batch -f <ops.json>            apply a multi-op mutation batch
//	                               (one journal entry, one solver settle)
//	solver                         component-solver stats (partition shape,
//	                               dirty-region accounting, batch coalescing)
//	watch [kind]                   tail the live event stream (SSE)
//	health                         daemon health with per-subsystem status
//	                               (exits 1 if the daemon is degraded)
//	remedy status                  remediation controller status + MTTR
//	                               (exits 1 while incidents are open)
//	remedy policy [file]           show the active policy, or install one
//	experiment <id>                run one experiment (E1..E12) server-side
//	snapshot [file]                checkpoint daemon state (default snapshot.json;
//	                               also persisted when the daemon runs -store-dir)
//	restore <file>                 roll the daemon back to a snapshot
//	journal [file]                 download the command journal (default stdout)
//	state-hash                     canonical state fingerprint (compare across
//	                               a kill/restart of a -store-dir daemon)
//
// Fleet commands (ihnetd -hosts-dir):
//
//	hosts                          list fleet hosts with pressure and clocks
//	fleet-report                   fleet-wide placement + utilization summary
//	fleet-advance <micros>         advance all hosts to a shared barrier
//	place <tenant> <src> <dst> <gbps>   admit on the least-pressured host
//	fleet-evict <tenant>           evict wherever the tenant runs
//	migrate <tenant> <host>        move the tenant to the named host
//	rebalance                      evacuate tenants off anomalous links
//	host-snapshot <host> [file]    checkpoint one fleet host
//	host-journal <host> [file]     download one fleet host's journal
//	fleet watch [kind]             tail the fleet-wide event stream (SSE)
//	fleet-rollup                   merged fleet metrics snapshot (JSON)
//	fleet-shards                   sharded engine stats: clocks, epochs, cache
//	fleet-solver                   per-host solver stats + fleet aggregate
//	fleet-remedy status            aggregated remediation status per host
//	fleet-remedy policy [file]     show or install the fleet-wide policy
//	fleet-state-hash               fleet-wide state fingerprint (host hashes
//	                               folded in name order)
//
//	version                        print build information
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/apiclient"
	"repro/internal/fabric"
)

func main() {
	if cli.MaybeVersion("ihctl", os.Args[1:]) {
		return
	}
	addr := flag.String("addr", "127.0.0.1:8080", "ihnetd address")
	token := flag.String("token", "",
		"bearer token for daemons started with -auth-token-file (overrides -token-file and $IHNET_TOKEN)")
	tokenFile := flag.String("token-file", "",
		"file holding the bearer token (overrides $IHNET_TOKEN)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "ihctl: need a command (see -h)")
		os.Exit(2)
	}
	// Ctrl-C cancels the in-flight request; the daemon sees the
	// disconnect and aborts server-side work at the next slice.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	api := apiclient.New(*addr)
	tok, err := resolveToken(*token, *tokenFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihctl: %v\n", err)
		os.Exit(2)
	}
	api.SetToken(tok)
	c := command{api: api, ctx: ctx}
	if err := c.dispatch(args); err != nil {
		fmt.Fprintf(os.Stderr, "ihctl: %v\n", err)
		os.Exit(1)
	}
}

// resolveToken picks the bearer token: explicit -token, then
// -token-file, then the IHNET_TOKEN environment variable. Empty means
// no auth header — right for daemons without -auth-token-file and for
// loopback-exempt ones.
func resolveToken(token, tokenFile string) (string, error) {
	if token != "" {
		return token, nil
	}
	if tokenFile != "" {
		data, err := os.ReadFile(tokenFile)
		if err != nil {
			return "", err
		}
		tok := string(bytes.TrimSpace(data))
		if tok == "" {
			return "", fmt.Errorf("token file %s is empty", tokenFile)
		}
		return tok, nil
	}
	return os.Getenv("IHNET_TOKEN"), nil
}

type command struct {
	api *apiclient.Client
	ctx context.Context
}

// get fetches a v1 path and renders the raw response body.
func (c command) get(path string, render func([]byte) error) error {
	var data []byte
	if err := c.api.Get(c.ctx, path, &data); err != nil {
		return err
	}
	return render(data)
}

func (c command) post(path string, body any, render func([]byte) error) error {
	var data []byte
	if err := c.api.Post(c.ctx, path, body, &data); err != nil {
		return err
	}
	return render(data)
}

func (c command) delete(path string, render func([]byte) error) error {
	var data []byte
	if err := c.api.Delete(c.ctx, path, &data); err != nil {
		return err
	}
	return render(data)
}

func admitBody(rest []string) (map[string]any, error) {
	gbps, err := strconv.ParseFloat(rest[3], 64)
	if err != nil {
		return nil, fmt.Errorf("bad rate %q", rest[3])
	}
	return map[string]any{
		"tenant": rest[0],
		"targets": []map[string]any{
			{"src": rest[1], "dst": rest[2], "rate_gbps": gbps},
		},
	}, nil
}

func (c command) dispatch(args []string) error {
	cmd, rest := args[0], args[1:]
	need := func(n int, usage string) error {
		if len(rest) != n {
			return fmt.Errorf("usage: ihctl %s %s", cmd, usage)
		}
		return nil
	}
	switch cmd {
	case "topology":
		return c.get("/topology", prettyTopology)
	case "report":
		return c.get("/report", prettyReport)
	case "alerts":
		return c.get("/alerts", prettyJSON)
	case "detections":
		return c.get("/detections", prettyJSON)
	case "tenants":
		return c.get("/tenants", prettyJSON)
	case "admit":
		if err := need(4, "<tenant> <src> <dst> <gbps>"); err != nil {
			return err
		}
		body, err := admitBody(rest)
		if err != nil {
			return err
		}
		return c.post("/tenants", body, prettyJSON)
	case "evict":
		if err := need(1, "<tenant>"); err != nil {
			return err
		}
		return c.delete("/tenants/"+url.PathEscape(rest[0]), prettyJSON)
	case "verify":
		if err := need(1, "<tenant>"); err != nil {
			return err
		}
		return c.get("/tenants/"+url.PathEscape(rest[0])+"/verify", prettyJSON)
	case "usage":
		if err := need(1, "<tenant>"); err != nil {
			return err
		}
		return c.get("/tenants/"+url.PathEscape(rest[0])+"/usage", prettyJSON)
	case "ping":
		if err := need(2, "<src> <dst>"); err != nil {
			return err
		}
		return c.get("/diag/ping?src="+url.QueryEscape(rest[0])+"&dst="+url.QueryEscape(rest[1]), prettyJSON)
	case "trace":
		if err := need(2, "<src> <dst>"); err != nil {
			return err
		}
		return c.get("/diag/trace?src="+url.QueryEscape(rest[0])+"&dst="+url.QueryEscape(rest[1]), prettyJSON)
	case "perf":
		if len(rest) != 2 && len(rest) != 3 {
			return fmt.Errorf("usage: ihctl perf <src> <dst> [tenant]")
		}
		u := "/diag/perf?src=" + url.QueryEscape(rest[0]) + "&dst=" + url.QueryEscape(rest[1])
		if len(rest) == 3 {
			u += "&tenant=" + url.QueryEscape(rest[2])
		}
		return c.get(u, prettyJSON)
	case "advance":
		if err := need(1, "<micros>"); err != nil {
			return err
		}
		us, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad micros %q", rest[0])
		}
		return c.post("/advance", map[string]any{"micros": us}, prettyJSON)
	case "batch":
		return c.batch(rest)
	case "solver":
		st, err := c.api.SolverStats(c.ctx)
		if err != nil {
			return err
		}
		renderSolverStats("", st)
		return nil
	case "experiment":
		if err := need(1, "<id>"); err != nil {
			return err
		}
		return c.get("/experiments/"+url.PathEscape(rest[0]), prettyExperiment)
	case "snapshot":
		out := "snapshot.json"
		if len(rest) == 1 {
			out = rest[0]
		} else if len(rest) > 1 {
			return fmt.Errorf("usage: ihctl snapshot [file]")
		}
		return c.post("/snapshot", nil, toFile(out, "snapshot"))
	case "restore":
		if err := need(1, "<file>"); err != nil {
			return err
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		var resp []byte
		if err := c.api.PostRaw(c.ctx, "/restore", data, &resp); err != nil {
			return err
		}
		return prettyJSON(resp)
	case "journal":
		if len(rest) > 1 {
			return fmt.Errorf("usage: ihctl journal [file]")
		}
		if len(rest) == 1 {
			return c.get("/journal", toFile(rest[0], "journal"))
		}
		return c.get("/journal", prettyJSON)
	case "state-hash":
		return c.get("/state/hash", prettyJSON)
	case "fleet-state-hash":
		return c.get("/fleet/state/hash", prettyJSON)
	case "watch":
		return c.watch("/events", rest)
	case "health":
		return c.health()
	case "remedy":
		return c.remedy("", rest)

	// Fleet verbs.
	case "fleet":
		// "ihctl fleet watch" spelling of the fleet stream tail.
		if len(rest) >= 1 && rest[0] == "watch" {
			return c.watch("/fleet/events", rest[1:])
		}
		return fmt.Errorf("usage: ihctl fleet watch [kind]")
	case "fleet-watch":
		return c.watch("/fleet/events", rest)
	case "fleet-remedy":
		return c.remedy("/fleet", rest)
	case "fleet-rollup":
		return c.get("/fleet/metrics/rollup", prettyJSON)
	case "fleet-shards":
		st, err := c.api.FleetShards(c.ctx)
		if err != nil {
			return err
		}
		fmt.Printf("shards: %d (workers/shard %d, inner epoch %v, outer every %d)\n",
			len(st.Shards), st.WorkersPerShard, time.Duration(st.InnerEpochNs), st.OuterEvery)
		fmt.Printf("outer epochs: %d  rollup cache: %d hits / %d misses\n",
			st.OuterEpochs, st.RollupCacheHits, st.RollupCacheMisses)
		for _, sh := range st.Shards {
			dirty := ""
			if sh.Dirty {
				dirty = "  dirty"
			}
			fmt.Printf("  shard %3d: %4d hosts (%d quarantined)  t=%v  inner %d  advanced %d  refolds %d%s\n",
				sh.Index, sh.Hosts, sh.Quarantined, time.Duration(sh.VirtualTimeNs),
				sh.InnerEpochs, sh.HostsAdvanced, sh.RollupRefolds, dirty)
		}
		return nil
	case "fleet-solver":
		st, err := c.api.FleetSolverStats(c.ctx)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(st.Hosts))
		for name := range st.Hosts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			renderSolverStats(name+": ", st.Hosts[name])
		}
		renderSolverStats("fleet: ", st.Totals)
		return nil
	case "hosts":
		return c.get("/fleet/hosts", prettyHosts)
	case "fleet-report":
		return c.get("/fleet/report", prettyJSON)
	case "fleet-advance":
		if err := need(1, "<micros>"); err != nil {
			return err
		}
		us, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad micros %q", rest[0])
		}
		return c.post("/fleet/advance", map[string]any{"micros": us}, prettyJSON)
	case "place":
		if err := need(4, "<tenant> <src> <dst> <gbps>"); err != nil {
			return err
		}
		body, err := admitBody(rest)
		if err != nil {
			return err
		}
		return c.post("/fleet/tenants", body, prettyJSON)
	case "fleet-evict":
		if err := need(1, "<tenant>"); err != nil {
			return err
		}
		return c.delete("/fleet/tenants/"+url.PathEscape(rest[0]), prettyJSON)
	case "migrate":
		if err := need(2, "<tenant> <host>"); err != nil {
			return err
		}
		return c.post("/fleet/tenants/"+url.PathEscape(rest[0])+"/migrate",
			map[string]any{"host": rest[1]}, prettyJSON)
	case "rebalance":
		return c.post("/fleet/rebalance", nil, prettyJSON)
	case "host-snapshot":
		if len(rest) != 1 && len(rest) != 2 {
			return fmt.Errorf("usage: ihctl host-snapshot <host> [file]")
		}
		out := rest[0] + "-snapshot.json"
		if len(rest) == 2 {
			out = rest[1]
		}
		return c.post("/fleet/hosts/"+url.PathEscape(rest[0])+"/snapshot", nil, toFile(out, "snapshot"))
	case "host-journal":
		if len(rest) != 1 && len(rest) != 2 {
			return fmt.Errorf("usage: ihctl host-journal <host> [file]")
		}
		path := "/fleet/hosts/" + url.PathEscape(rest[0]) + "/journal"
		if len(rest) == 2 {
			return c.get(path, toFile(rest[1], "journal"))
		}
		return c.get(path, prettyJSON)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// watch tails an SSE event stream, rendering one line per event until
// interrupted. An optional kind argument filters client-side.
func (c command) watch(path string, rest []string) error {
	if len(rest) > 1 {
		return fmt.Errorf("usage: ihctl watch [kind]")
	}
	kindFilter := ""
	if len(rest) == 1 {
		kindFilter = rest[0]
	}
	return c.api.Stream(c.ctx, path, 0, func(ev apiclient.StreamEvent) error {
		if kindFilter != "" && ev.Type != kindFilter {
			return nil
		}
		var d struct {
			VirtualNs int64   `json:"virtual_ns"`
			Host      string  `json:"host"`
			Span      string  `json:"span"`
			Subject   string  `json:"subject"`
			Detail    string  `json:"detail"`
			Value     float64 `json:"value"`
		}
		if err := json.Unmarshal(ev.Data, &d); err != nil {
			return err
		}
		line := fmt.Sprintf("%12d %-16s", d.VirtualNs, ev.Type)
		if d.Host != "" {
			line += " host=" + d.Host
		}
		if d.Subject != "" {
			line += " " + d.Subject
		}
		if d.Value != 0 {
			line += fmt.Sprintf(" value=%g", d.Value)
		}
		if d.Span != "" {
			line += " span=" + d.Span
		}
		if d.Detail != "" {
			line += "  " + d.Detail
		}
		fmt.Println(line)
		return nil
	})
}

// remedy handles the "remedy" and "fleet-remedy" verb families. prefix
// is "" against a host daemon and "/fleet" against a fleet daemon.
func (c command) remedy(prefix string, rest []string) error {
	family := "remedy"
	if prefix != "" {
		family = "fleet-remedy"
	}
	if len(rest) == 0 {
		return fmt.Errorf("usage: ihctl %s status|policy [file]", family)
	}
	switch rest[0] {
	case "status":
		if prefix != "" {
			st, err := c.api.FleetRemedyStatus(c.ctx)
			if err != nil {
				return err
			}
			return renderFleetRemedyStatus(st)
		}
		st, err := c.api.RemedyStatus(c.ctx)
		if err != nil {
			return err
		}
		return renderRemedyStatus(st)
	case "policy":
		path := prefix + "/remedy/policy"
		switch len(rest) {
		case 1:
			return c.get(path, prettyJSON)
		case 2:
			doc, err := os.ReadFile(rest[1])
			if err != nil {
				return err
			}
			var resp []byte
			if err := c.api.Put(c.ctx, path, json.RawMessage(doc), &resp); err != nil {
				return err
			}
			return prettyJSON(resp)
		}
		return fmt.Errorf("usage: ihctl %s policy [file]", family)
	}
	return fmt.Errorf("usage: ihctl %s status|policy [file]", family)
}

func remedySummaryLine(degraded bool, st apiclient.RemedyStatus) string {
	status := "ok"
	if degraded {
		status = "degraded"
	}
	return fmt.Sprintf("status: %s  open: %d  resolved: %d/%d  mttr p50/p99: %.1f/%.1f us\n"+
		"actions: %d executed, %d rejected, %d failed, %d suppressed (of %d proposed)",
		status, st.Stats.Open, st.Stats.Resolved, st.Stats.Incidents,
		st.MTTRp50Us, st.MTTRp99Us,
		st.Stats.Executed, st.Stats.Rejected, st.Stats.Failed, st.Stats.Suppressed, st.Stats.Proposed)
}

// renderRemedyStatus prints the controller summary and incident ledger,
// returning a non-nil error (so ihctl exits 1) while incidents are
// open — scripts can gate on the exit code alone.
func renderRemedyStatus(st apiclient.RemedyStatus) error {
	fmt.Println(remedySummaryLine(st.Degraded, st))
	for _, in := range st.Incidents {
		state := "open"
		if in.Resolved {
			state = "resolved"
		}
		fmt.Printf("  %-36s %-10s %-8s actions=%d\n", in.Subject, in.Class, state, len(in.Actions))
	}
	if st.Degraded {
		return fmt.Errorf("remediation in progress: %d open incident(s)", st.Stats.Open)
	}
	return nil
}

func renderFleetRemedyStatus(st apiclient.FleetRemedyStatus) error {
	fmt.Println(remedySummaryLine(st.Degraded, apiclient.RemedyStatus{
		Stats: st.Stats, MTTRp50Us: st.MTTRp50Us, MTTRp99Us: st.MTTRp99Us}))
	names := make([]string, 0, len(st.Hosts))
	for name := range st.Hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hs := st.Hosts[name]
		status := "ok"
		if hs.Degraded {
			status = "degraded"
		}
		fmt.Printf("  %-20s %-8s open=%d resolved=%d\n", name, status, hs.Stats.Open, hs.Stats.Resolved)
	}
	if st.Degraded {
		return fmt.Errorf("remediation in progress: %d open incident(s)", st.Stats.Open)
	}
	return nil
}

// health renders the typed health document with its subsystem table.
// A degraded daemon makes ihctl exit non-zero so health checks can be
// scripted without parsing the output.
func (c command) health() error {
	h, err := c.api.Health(c.ctx)
	if err != nil {
		return err
	}
	mode := h.Mode
	if mode == "" {
		mode = "host"
	}
	fmt.Printf("status: %s (%s daemon, version %s, %s)\n", h.Status, mode, h.Version, h.GoVersion)
	fmt.Printf("uptime: %.1fs  virtual time: %dns\n", h.UptimeSeconds, h.VirtualTimeNs)
	if h.Mode == "fleet" {
		fmt.Printf("hosts: %d (%d quarantined)\n", h.Hosts, h.Quarantined)
	} else {
		fmt.Printf("tenants: %d\n", h.Tenants)
	}
	names := make([]string, 0, len(h.Subsystems))
	for name := range h.Subsystems {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sub := h.Subsystems[name]
		fmt.Printf("  %-12s %s", name, sub.Status)
		keys := make([]string, 0, len(sub.Detail))
		for k := range sub.Detail {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf(" %s=%s", k, sub.Detail[k])
		}
		fmt.Println()
	}
	if h.Status != "ok" {
		return fmt.Errorf("daemon is %s", h.Status)
	}
	return nil
}

// batch applies a multi-op mutation file (`ihctl batch -f ops.json`).
// The file is either {"ops":[...]} or a bare op array; every op lands
// in one journal entry and one solver settle. Per-op outcomes are
// printed either way; a partial application exits non-zero.
func (c command) batch(rest []string) error {
	if len(rest) != 2 || rest[0] != "-f" {
		return fmt.Errorf("usage: ihctl batch -f <ops.json>")
	}
	doc, err := os.ReadFile(rest[1])
	if err != nil {
		return err
	}
	var ops []apiclient.BatchOp
	var wrapped struct {
		Ops []apiclient.BatchOp `json:"ops"`
	}
	if err := json.Unmarshal(doc, &wrapped); err == nil && len(wrapped.Ops) > 0 {
		ops = wrapped.Ops
	} else if err := json.Unmarshal(doc, &ops); err != nil {
		return fmt.Errorf("parse %s: %w", rest[1], err)
	}
	res, err := c.api.Batch(c.ctx, ops)
	for i, r := range res.Results {
		line := fmt.Sprintf("  %2d %-12s %s", i, r.Op, r.Status)
		if r.Error != "" {
			line += "  " + r.Error
		}
		fmt.Println(line)
	}
	if err == nil {
		fmt.Printf("%d op(s) applied in %d solver settle(s)\n", len(ops), res.SolverSettles)
	}
	return err
}

// renderSolverStats prints one solver snapshot, prefixing each line
// (fleet output uses the host name).
func renderSolverStats(prefix string, st fabric.SolverStats) {
	coalesce := 1.0
	if st.Solves > 0 {
		coalesce = float64(st.Mutations) / float64(st.Solves)
	}
	util := 0.0
	if st.ParallelWallNs > 0 && st.Workers > 0 {
		util = float64(st.WorkerBusyNs) / (float64(st.ParallelWallNs) * float64(st.Workers))
	}
	fmt.Printf("%scomponents: %d (largest %d of %d flows)\n",
		prefix, st.Components, st.LargestComponent, st.Flows)
	fmt.Printf("%ssolves: %d (+%d noop, %d parallel)  rounds: %d\n",
		prefix, st.Solves, st.NoopSolves, st.ParallelSolves, st.Rounds)
	fmt.Printf("%sdirty region: %d components / %d flows solved, %d flows skipped\n",
		prefix, st.ComponentsSolved, st.FlowsSolved, st.FlowsSkipped)
	fmt.Printf("%smutations: %d (%d batched in %d batches, coalesce %.1fx)\n",
		prefix, st.Mutations, st.BatchedMutations, st.Batches, coalesce)
	fmt.Printf("%sworkers: %d (threshold %d)  utilization: %.0f%%\n",
		prefix, st.Workers, st.ParallelThreshold, util*100)
}

// toFile renders a response body by writing it to a file, reporting
// what landed where.
func toFile(path, what string) func([]byte) error {
	return func(data []byte) error {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes) to %s\n", what, len(data), path)
		return nil
	}
}

func prettyJSON(data []byte) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		_, err = os.Stdout.Write(data)
		return err
	}
	buf.WriteByte('\n')
	_, err := buf.WriteTo(os.Stdout)
	return err
}

func prettyTopology(data []byte) error {
	var t struct {
		Name       string `json:"name"`
		Components []struct {
			Kind string `json:"kind"`
		} `json:"components"`
		Links []struct {
			Class string `json:"class"`
		} `json:"links"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return err
	}
	kinds := map[string]int{}
	for _, c := range t.Components {
		kinds[c.Kind]++
	}
	classes := map[string]int{}
	for _, l := range t.Links {
		classes[l.Class]++
	}
	fmt.Printf("host %q: %d components, %d links\n", t.Name, len(t.Components), len(t.Links))
	fmt.Printf("  components: %v\n  link classes: %v\n", kinds, classes)
	return nil
}

func prettyReport(data []byte) error {
	var r struct {
		VirtualTimeNs int64 `json:"virtual_time_ns"`
		Links         []struct {
			ID          string  `json:"id"`
			Utilization float64 `json:"utilization"`
		} `json:"links"`
		Tenants   map[string]map[string]float64 `json:"tenant_usage_bps"`
		Congested []string                      `json:"congested"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	fmt.Printf("virtual time: %dns\n", r.VirtualTimeNs)
	fmt.Printf("congested links: %v\n", r.Congested)
	fmt.Println("busiest links:")
	// Top 5 by utilization.
	for i := 0; i < 5; i++ {
		best, idx := -1.0, -1
		for j, l := range r.Links {
			if l.Utilization > best {
				best, idx = l.Utilization, j
			}
		}
		if idx < 0 {
			break
		}
		fmt.Printf("  %-48s %5.1f%%\n", r.Links[idx].ID, best*100)
		r.Links[idx].Utilization = -2
	}
	for t, usage := range r.Tenants {
		fmt.Printf("tenant %s: %v\n", t, usage)
	}
	return nil
}

func prettyHosts(data []byte) error {
	var hosts []struct {
		Name          string  `json:"name"`
		VirtualTimeNs int64   `json:"virtual_time_ns"`
		Pressure      float64 `json:"pressure"`
		Tenants       int     `json:"tenants"`
		Detections    int     `json:"detections"`
		Quarantined   string  `json:"quarantined"`
	}
	if err := json.Unmarshal(data, &hosts); err != nil {
		return err
	}
	fmt.Printf("%-20s %14s %9s %8s %11s  %s\n",
		"HOST", "VTIME_NS", "PRESSURE", "TENANTS", "DETECTIONS", "STATUS")
	for _, h := range hosts {
		status := "ok"
		if h.Quarantined != "" {
			status = "quarantined: " + h.Quarantined
		}
		fmt.Printf("%-20s %14d %8.1f%% %8d %11d  %s\n",
			h.Name, h.VirtualTimeNs, h.Pressure*100, h.Tenants, h.Detections, status)
	}
	return nil
}

func prettyExperiment(data []byte) error {
	var e struct {
		Rendered string `json:"rendered"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		return err
	}
	fmt.Print(e.Rendered)
	return nil
}
