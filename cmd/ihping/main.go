// Command ihping is the intra-host ping the paper calls for in §3.1:
// it probes the round-trip latency and loss between two components of
// the intra-host network, optionally under injected load or faults.
//
// Usage:
//
//	ihping -src gpu0 -dst nic0 [-count 10] [-size 64] [-loopback]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/diag"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	if cli.MaybeVersion("ihping", os.Args[1:]) {
		return
	}
	var common cli.Common
	common.Register()
	src := flag.String("src", "gpu0", "probe source component")
	dst := flag.String("dst", "nic0", "probe destination component")
	count := flag.Int("count", 10, "number of probes")
	size := flag.Int64("size", 64, "probe payload bytes each way")
	interval := flag.Duration("interval", 10_000, "virtual time between probes (ns)")
	flag.Parse()

	fab, err := common.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihping: %v\n", err)
		os.Exit(1)
	}
	rep, err := diag.RunPing(fab, topology.CompID(*src), topology.CompID(*dst), diag.PingOptions{
		Count: *count, Size: *size, Interval: simtime.Duration(*interval),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihping: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	for i, rtt := range rep.RTTs {
		fmt.Printf("  probe %2d: rtt=%v\n", i+1, rtt)
	}
	if rep.Lost > 0 {
		fmt.Printf("  %d probe(s) lost\n", rep.Lost)
		os.Exit(2)
	}
}
