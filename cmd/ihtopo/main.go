// Command ihtopo inspects the built-in host topology presets: the
// components, links, and Figure 1 class envelopes of the intra-host
// network.
//
// Usage:
//
//	ihtopo -preset two-socket [-links] [-components] [-paths gpu0,nic0]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cmd/internal/cli"
	"repro/internal/memsys"
	"repro/internal/topology"
)

func main() {
	if cli.MaybeVersion("ihtopo", os.Args[1:]) {
		return
	}
	preset := flag.String("preset", "two-socket", "topology preset: "+strings.Join(topology.PresetNames(), ", "))
	hostFile := flag.String("hostfile", "", "JSON host description to inspect instead of a preset")
	showLinks := flag.Bool("links", false, "list every directed link")
	showComps := flag.Bool("components", false, "list every component")
	dumpJSON := flag.Bool("json", false, "dump the host description as JSON (feed back via -hostfile)")
	paths := flag.String("paths", "", "src,dst: print the k shortest paths between two components")
	k := flag.Int("k", 3, "number of alternative paths for -paths")
	flag.Parse()

	var topo *topology.Topology
	if *hostFile != "" {
		f, err := os.Open(*hostFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihtopo: %v\n", err)
			os.Exit(1)
		}
		topo, err = topology.FromJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihtopo: %v\n", err)
			os.Exit(1)
		}
	} else {
		build, ok := topology.Presets[*preset]
		if !ok {
			fmt.Fprintf(os.Stderr, "ihtopo: unknown preset %q (have %s)\n", *preset, strings.Join(topology.PresetNames(), ", "))
			os.Exit(1)
		}
		topo = build()
	}
	if *dumpJSON {
		data, err := topo.MarshalJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihtopo: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	fmt.Printf("preset %s: %d components, %d directed links\n",
		topo.Name, topo.NumComponents(), topo.NumLinks())

	counts := make(map[topology.Kind]int)
	for _, c := range topo.Components() {
		counts[c.Kind]++
	}
	for k := topology.KindCPU; k <= topology.KindExternal; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-12s %d\n", k.String(), counts[k])
		}
	}
	ms := memsys.New(topo)
	fmt.Printf("  sockets: %v, aggregate memory bandwidth %v\n", ms.Sockets(), ms.AggregateBandwidth(-1))

	if *showComps {
		fmt.Println("\ncomponents:")
		for _, c := range topo.Components() {
			fmt.Printf("  %-24s %-12s socket=%d config=%v\n", c.ID, c.Kind, c.Socket, c.Config)
		}
	}
	if *showLinks {
		fmt.Println("\nlinks:")
		for _, l := range topo.Links() {
			fmt.Printf("  %-52s class=(%d)%-13s cap=%-10s lat=%s\n",
				l.ID, l.Class.FigureRef(), l.Class, l.Capacity, l.BaseLatency)
		}
	}
	if *paths != "" {
		parts := strings.SplitN(*paths, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "ihtopo: -paths wants src,dst")
			os.Exit(1)
		}
		ps, err := topo.KShortestPaths(topology.CompID(parts[0]), topology.CompID(parts[1]), *k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihtopo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n%d pathway(s) %s -> %s:\n", len(ps), parts[0], parts[1])
		for i, p := range ps {
			fmt.Printf("  %d. [%v, bottleneck %v] %s\n", i+1, p.BaseLatency(), p.BottleneckCapacity(), p)
		}
	}
}
