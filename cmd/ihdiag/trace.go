package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/snap"
	"repro/internal/topology"
)

// runTrace implements `ihdiag trace`: drive a managed host through a
// representative scenario (tenant admission, contention, optionally a
// mid-run fault), then export the manager's event ring as a Chrome
// trace_event file that about://tracing and Perfetto load directly.
//
// The scenario runs over a recording session, so every command gets a
// span that its effects inherit: the export carries flow arrows from
// each admission, fault, and eviction to the events it caused.
func runTrace(args []string) {
	fs := flag.NewFlagSet("ihdiag trace", flag.ExitOnError)
	chrome := fs.String("chrome", "", "write Chrome trace_event JSON to this file")
	preset := fs.String("preset", "two-socket",
		"topology preset: "+strings.Join(topology.PresetNames(), ", "))
	seed := fs.Int64("seed", 1, "simulation seed")
	duration := fs.Duration("duration", 3*time.Millisecond, "virtual time to simulate")
	degrade := fs.String("degrade", "socket0.rootport0->pcieswitch0",
		"directed link to silently degrade mid-run (empty = healthy run)")
	events := fs.Int("events", 1<<16, "event ring capacity for the run")
	fs.Parse(args)
	if *chrome == "" {
		fmt.Fprintln(os.Stderr, "ihdiag trace: --chrome <file> is required")
		fs.Usage()
		os.Exit(1)
	}

	if _, ok := topology.Presets[*preset]; !ok {
		fatalf("unknown preset %q (have %s)", *preset, strings.Join(topology.PresetNames(), ", "))
	}
	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.TraceCapacity = *events
	sess, err := snap.NewSession(snap.Config{Preset: *preset, Options: opts})
	if err != nil {
		fatalf("%v", err)
	}
	mgr := sess.Manager()

	// A representative workload: a guaranteed tenant, a greedy
	// bystander on the same pathway, and sized transfers completing
	// throughout, so the trace shows admission, arbitration,
	// heartbeats, rate recomputations and flow lifecycle together.
	sess.SetSpan("admit-kv")
	if _, err := sess.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)},
	}); err != nil {
		fatalf("admit: %v", err)
	}
	path := mgr.Tenant("kv").Assignments[0].Path
	fab := mgr.Fabric()
	if err := fab.AddFlow(&fabric.Flow{Tenant: "kv", Path: path}); err != nil {
		fatalf("%v", err)
	}
	if err := fab.AddFlow(&fabric.Flow{Tenant: "evil", Path: path}); err != nil {
		fatalf("%v", err)
	}
	// A stream of sized transfers so flow-done events appear.
	var pump func(simtime.Time)
	pump = func(simtime.Time) {
		_ = fab.AddFlow(&fabric.Flow{
			Tenant: "batch", Path: path, Size: 1 << 20, OnComplete: pump,
		})
	}
	pump(0)

	third := simtime.Duration(duration.Nanoseconds() / 3)
	advance := func(span string, d simtime.Duration) {
		sess.SetSpan(span)
		if err := sess.Advance(d); err != nil {
			fatalf("advance: %v", err)
		}
	}
	advance("healthy-run", third)
	if *degrade != "" {
		sess.SetSpan("degrade")
		if err := sess.DegradeLink(*degrade, 0.5, 20*simtime.Microsecond); err != nil {
			fatalf("degrade: %v", err)
		}
	}
	advance("degraded-run", third)
	sess.SetSpan("evict-kv")
	if err := sess.Evict("kv"); err != nil {
		fatalf("evict: %v", err)
	}
	advance("drain-run", third)
	mgr.Stop()

	tr := mgr.Obs().Tracer
	f, err := os.Create(*chrome)
	if err != nil {
		fatalf("%v", err)
	}
	snapshot := tr.Snapshot()
	if err := obs.WriteChromeTrace(f, snapshot); err != nil {
		f.Close()
		fatalf("export: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %d events (%d recorded, %d dropped) covering %v of virtual time to %s\n",
		len(snapshot), tr.Total(), tr.Dropped(), mgr.Engine().Now(), *chrome)
	fmt.Println("open in about://tracing (Chrome) or https://ui.perfetto.dev")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ihdiag trace: "+format+"\n", args...)
	os.Exit(1)
}
