// Command ihdiag demonstrates §3.1 Q3's learned diagnosis: it trains
// the multi-modal fault classifier on synthetic incidents, injects a
// chosen fault into a fresh host, extracts the live telemetry
// features, and prints the classifier's verdict with its evidence.
//
// The trace subcommand instead records a whole managed DES run —
// admissions, flow lifecycle, arbiter cap changes, heartbeats,
// detections — and exports it as Chrome trace_event JSON for
// about://tracing or Perfetto (ui.perfetto.dev).
//
// The replay subcommand is the determinism-regression gate: it replays
// a command journal (or the journal inside a snapshot, or a scenario
// drill converted to one) twice and exits non-zero if the rolling
// state hashes ever disagree or the snapshot fails verification.
//
// Usage:
//
//	ihdiag -inject link-degradation
//	ihdiag -inject ddio-thrash -train 10
//	ihdiag trace --chrome out.json
//	ihdiag trace --chrome out.json -degrade pcieswitch0->nic0 -duration 5ms
//	ihdiag replay -preset two-socket journal.json
//	ihdiag replay snapshot.json
//	ihdiag replay -scenario scenarios/colocation-guarantee.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cmd/internal/cli"
	"repro/internal/anomaly"
	"repro/internal/cachesim"
	"repro/internal/diagml"
	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	if cli.MaybeVersion("ihdiag", os.Args[1:]) {
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		runReplay(os.Args[2:])
		return
	}
	var names []string
	for _, l := range diagml.AllLabels {
		names = append(names, string(l))
	}
	injectFlag := flag.String("inject", "link-degradation", "fault to inject: "+strings.Join(names, ", "))
	trainN := flag.Int("train", 8, "training incidents per class")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var label diagml.Label
	for _, l := range diagml.AllLabels {
		if string(l) == *injectFlag {
			label = l
		}
	}
	if label == "" {
		fmt.Fprintf(os.Stderr, "ihdiag: unknown fault %q (have %s)\n", *injectFlag, strings.Join(names, ", "))
		os.Exit(1)
	}

	fmt.Printf("training on %d synthetic incidents per class ...\n", *trainN)
	train, err := diagml.GenerateDataset(*seed+500, *trainN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag: %v\n", err)
		os.Exit(1)
	}
	clf, err := diagml.Train(train, 3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag: %v\n", err)
		os.Exit(1)
	}

	// A fresh host with the full monitoring stack.
	engine := simtime.NewEngine(*seed)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, engine, fabric.DefaultConfig())
	plat, err := anomaly.New(fab, anomaly.DefaultPairs(topo), anomaly.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag: %v\n", err)
		os.Exit(1)
	}
	_ = plat.Start()
	mon, err := monitor.New(fab, monitor.DefaultOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag: %v\n", err)
		os.Exit(1)
	}
	_ = mon.Start()
	ddio, err := cachesim.NewManager(fab, cachesim.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag: %v\n", err)
		os.Exit(1)
	}
	engine.RunFor(2 * simtime.Millisecond) // calibrate

	fmt.Printf("injecting %q into a fresh host ...\n", label)
	if err := diagml.InjectForDemo(label, fab, ddio, topo, engine.Rand()); err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag: %v\n", err)
		os.Exit(1)
	}
	engine.RunFor(simtime.Millisecond)

	feats := diagml.Extract(fab, plat, mon, ddio)
	fmt.Printf("\nlive telemetry features:\n")
	fmt.Printf("  rtt inflation   %.2fx\n", feats.RTTInflation)
	fmt.Printf("  heartbeat loss  %.1f%%\n", feats.LossFrac*100)
	fmt.Printf("  pcie util       %.1f%%\n", feats.MaxPCIeUtil*100)
	fmt.Printf("  memory util     %.1f%%\n", feats.MaxMemUtil*100)
	fmt.Printf("  upi util        %.1f%%\n", feats.MaxUPIUtil*100)
	fmt.Printf("  ddio miss       %.1f%%\n", feats.DDIOMiss*100)
	fmt.Printf("  config drift    %.0f alert(s)\n", feats.ConfigDrift)

	v := clf.Classify(feats)
	fmt.Printf("\nverdict: %s (confidence %.0f%%, neighbors %v)\n", v.Label, v.Confidence*100, v.Neighbors)
	if v.Label == label {
		fmt.Println("correct: the classifier recovered the injected fault type")
	} else {
		fmt.Printf("MISMATCH: injected %s\n", label)
		os.Exit(2)
	}
}
