package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/snap"
	"repro/internal/topology"
)

// runReplay implements `ihdiag replay`: the determinism-regression
// gate. It replays a command journal twice against fresh hosts and
// compares rolling state hashes, exiting non-zero at the first
// divergence. Input is a journal file (paired with -preset/-seed), a
// full snapshot file (self-describing; also verifies checksum and the
// recorded final state hash), or a scenario drill via -scenario.
func runReplay(args []string) {
	fs := flag.NewFlagSet("ihdiag replay", flag.ExitOnError)
	preset := fs.String("preset", "two-socket",
		"host for a bare journal: "+strings.Join(topology.PresetNames(), ", "))
	seed := fs.Int64("seed", 1, "simulation seed for a bare journal")
	scenarioFile := fs.String("scenario", "", "convert this drill spec to a journal and check it")
	hashes := fs.Bool("hashes", false, "print the rolling state hash after every entry")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: ihdiag replay [flags] <journal.json | snapshot.json>
       ihdiag replay -scenario <drill.json>

Replays the command stream twice on fresh hosts and compares rolling
state hashes. Exit status: 0 identical, 1 diverged or corrupt.`)
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	cfg, journal, err := loadReplayInput(fs, *scenarioFile, *preset, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag replay: %v\n", err)
		os.Exit(1)
	}

	if *hashes {
		trace, err := snap.ReplayTrace(cfg, journal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ihdiag replay: %v\n", err)
			os.Exit(1)
		}
		for _, p := range trace {
			fmt.Printf("  %6d  %12dns  %-14s %s\n", p.Seq, p.AtNs, p.Kind, p.Hash)
		}
	}

	div, err := snap.CheckDeterminism(cfg, journal)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ihdiag replay: %v\n", err)
		os.Exit(1)
	}
	if div != nil {
		fmt.Fprintf(os.Stderr, "DIVERGED: %v\n", div)
		os.Exit(1)
	}
	fmt.Printf("deterministic: %d entries replayed twice, %d hash points identical\n",
		journal.Len(), journal.Len()+1)
}

// loadReplayInput resolves the three input forms to a (config,
// journal) pair. Snapshot files are recognized by their envelope
// format field and fully verified — checksum, replay, and recorded
// state hash — before their journal is handed back.
func loadReplayInput(fs *flag.FlagSet, scenarioFile, preset string, seed int64) (snap.Config, snap.Journal, error) {
	if scenarioFile != "" {
		f, err := os.Open(scenarioFile)
		if err != nil {
			return snap.Config{}, snap.Journal{}, err
		}
		defer f.Close()
		spec, err := scenario.Load(f)
		if err != nil {
			return snap.Config{}, snap.Journal{}, fmt.Errorf("%s: %w", scenarioFile, err)
		}
		cfg, journal := scenario.ToJournal(spec)
		return cfg, journal, nil
	}

	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return snap.Config{}, snap.Journal{}, err
	}

	var envelope struct {
		Format string `json:"format"`
	}
	if json.Unmarshal(data, &envelope) == nil && envelope.Format == snap.SnapshotFormat {
		p, err := snap.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return snap.Config{}, snap.Journal{}, fmt.Errorf("%s: %w", path, err)
		}
		// A snapshot records the hash its journal must reproduce;
		// Restore enforces it, which catches perturbed journals even
		// when both replays agree with each other.
		if _, err := snap.Restore(bytes.NewReader(data)); err != nil {
			return snap.Config{}, snap.Journal{}, fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("snapshot %s: checksum ok, replay reaches recorded hash %s\n", path, p.StateHash[:12])
		return p.Config, p.Journal, nil
	}

	var journal snap.Journal
	if err := json.Unmarshal(data, &journal); err != nil {
		return snap.Config{}, snap.Journal{}, fmt.Errorf("%s: not a journal or snapshot: %w", path, err)
	}
	opts := core.DefaultOptions()
	opts.Seed = seed
	return snap.Config{Preset: preset, Options: opts}, journal, nil
}
