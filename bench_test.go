package repro

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// Each benchmark regenerates one experiment table (the reproduction's
// tables and figures; see DESIGN.md §4 and EXPERIMENTS.md). The table
// is printed once per benchmark run via b.Log so `go test -bench . -v`
// doubles as the paper-artifact generator; cmd/ihbench renders the
// same tables standalone.
func benchExperiment(b *testing.B, id string) experiments.Table {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err = exp.Run(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tab.Render())
	return tab
}

// metric extracts a numeric cell (strips a trailing unit suffix) for
// ReportMetric.
func metric(tab experiments.Table, rowPrefix string, col int) float64 {
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], rowPrefix) {
			s := r[col]
			for i, c := range s {
				if (c < '0' || c > '9') && c != '.' && c != '-' {
					s = s[:i]
					break
				}
			}
			v, err := strconv.ParseFloat(s, 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

func durMetric(tab experiments.Table, rowPrefix string, col int) float64 {
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], rowPrefix) {
			d, err := time.ParseDuration(r[col])
			if err == nil {
				return float64(d.Nanoseconds())
			}
		}
	}
	return 0
}

func BenchmarkE1_Figure1LinkTable(b *testing.B) {
	tab := benchExperiment(b, "E1")
	inEnv := 0.0
	for _, r := range tab.Rows {
		if r[len(r)-1] == "true" {
			inEnv++
		}
	}
	b.ReportMetric(inEnv, "classes-in-envelope")
}

func BenchmarkE2_EndToEndLatencyBreakdown(b *testing.B) {
	tab := benchExperiment(b, "E2")
	b.ReportMetric(durMetric(tab, "idle", 3), "idle-total-ns")
	b.ReportMetric(durMetric(tab, "congested", 3), "congested-total-ns")
}

func BenchmarkE3_InterferenceBaseline(b *testing.B) {
	tab := benchExperiment(b, "E3")
	solo := durMetric(tab, "kv alone", 2)
	worst := durMetric(tab, "kv + ml + rdma loopback", 2)
	if solo > 0 {
		b.ReportMetric(worst/solo, "p99-inflation-x")
	}
}

func BenchmarkE4_DDIOThrashing(b *testing.B) {
	tab := benchExperiment(b, "E4")
	b.ReportMetric(metric(tab, "2 writers @ 20GB/s (thrash)", 3), "miss-pct")
}

func BenchmarkE5_AttributionAccuracy(b *testing.B) {
	tab := benchExperiment(b, "E5")
	b.ReportMetric(metric(tab, "counters+even-split", 4), "counter-error-pct")
	b.ReportMetric(metric(tab, "interception", 4), "intercept-error-pct")
}

func BenchmarkE6_MonitoringOverhead(b *testing.B) {
	benchExperiment(b, "E6")
}

func BenchmarkE7_FailureLocalization(b *testing.B) {
	tab := benchExperiment(b, "E7")
	detected := 0.0
	for _, r := range tab.Rows {
		if r[0] == "heartbeats" && r[3] == "yes" && r[5] == "true" {
			detected++
		}
	}
	b.ReportMetric(detected, "heartbeat-localized")
}

func BenchmarkE8_IsolationWithManager(b *testing.B) {
	tab := benchExperiment(b, "E8")
	un := durMetric(tab, "unmanaged", 2)
	st := durMetric(tab, "managed, strict", 2)
	if st > 0 {
		b.ReportMetric(un/st, "p99-recovery-x")
	}
}

func BenchmarkE9_TopologyAwareScheduling(b *testing.B) {
	tab := benchExperiment(b, "E9")
	b.ReportMetric(metric(tab, "topology-aware", 2), "ta-admitted")
	b.ReportMetric(metric(tab, "naive", 2), "naive-admitted")
}

func BenchmarkE10_WorkConservationAndOverhead(b *testing.B) {
	tab := benchExperiment(b, "E10")
	strict := metric(tab, "strict: idle-guarantee bystander rate", 1)
	wc := metric(tab, "work-conserving: idle-guarantee bystander rate", 1)
	if strict > 0 {
		b.ReportMetric(wc/strict, "conservation-gain-x")
	}
}

func BenchmarkE11_CXLMemoryTiers(b *testing.B) {
	tab := benchExperiment(b, "E11")
	b.ReportMetric(durMetric(tab, "cxl.cache coherent access", 3), "cxl-access-ns")
	b.ReportMetric(durMetric(tab, "PCIe DMA, IOMMU translate", 3), "pcie-dma-ns")
}

func BenchmarkE12_DiagnosisML(b *testing.B) {
	tab := benchExperiment(b, "E12")
	b.ReportMetric(metric(tab, "full multi-modal", 2), "full-accuracy-pct")
	b.ReportMetric(metric(tab, "inter-host-style", 2), "homogeneous-accuracy-pct")
}

func BenchmarkE13_LoadLatencyCurve(b *testing.B) {
	tab := benchExperiment(b, "E13")
	b.ReportMetric(durMetric(tab, "1", 4), "managed-lowload-p50-ns")
	b.ReportMetric(durMetric(tab, "1", 2), "unmanaged-lowload-p50-ns")
}

// obsHotPathLoop drives the fabric's instrumented hot path: one sized
// flow added, run to completion (AddFlow -> recompute -> completion
// event -> fireCompletions), b.N times. This is the loop the obs
// package must not tax.
func obsHotPathLoop(b *testing.B, o *obs.Obs) {
	e := simtime.NewEngine(1)
	topo := topology.TwoSocketServer()
	fab := fabric.New(topo, e, fabric.DefaultConfig())
	fab.SetObs(o)
	path, err := topo.ShortestPath("nic0", "socket0.dimm0_0")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl := &fabric.Flow{Tenant: "bench", Path: path, Size: 1 << 16}
		if err := fab.AddFlow(fl); err != nil {
			b.Fatal(err)
		}
		e.Run()
		if !fl.Completed() {
			b.Fatal("flow did not complete")
		}
	}
}

// BenchmarkObsFabricHotPath measures the observability tax on the
// fabric hot path in three configurations. The tracing-enabled vs
// tracing-disabled gap is the cost this PR promises stays under 5%;
// compare with `go test -bench ObsFabricHotPath -count 10 | benchstat`.
func BenchmarkObsFabricHotPath(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) {
		obsHotPathLoop(b, nil)
	})
	b.Run("tracing-disabled", func(b *testing.B) {
		o := obs.New(8192)
		o.Tracer.SetEnabled(false)
		obsHotPathLoop(b, o)
	})
	b.Run("tracing-enabled", func(b *testing.B) {
		obsHotPathLoop(b, obs.New(8192))
	})
}
