// Failure localization: the paper's §3.1 motivating anomaly. A PCIe
// link silently degrades — no hard failure, no counter alarm — and
// applications just get slower. The heartbeat mesh detects the RTT
// inflation, localizes the culprit link by path-overlap voting, and
// ihtrace confirms the hop. This is the debugging workflow the paper
// says today's hosts cannot offer.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	mgr, err := core.New(topology.TwoSocketServer(), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatal(err)
	}
	fab := mgr.Fabric()

	// Let the heartbeat mesh calibrate per-pair baselines.
	mgr.RunFor(3 * simtime.Millisecond)
	fmt.Printf("heartbeat mesh calibrated: %d probes across %d rounds\n\n",
		mgr.Anomaly().ProbesSent(), mgr.Anomaly().Rounds())

	// The silent fault: pcieswitch0's port to nic0 degrades.
	victim := topology.LinkID("pcieswitch0->nic0")
	injectAt := mgr.Engine().Now()
	if err := fab.DegradeLink(victim, 0.2, 10*simtime.Microsecond); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v  injected silent degradation on %s (-20%% capacity, +10us latency)\n",
		injectAt, victim)

	// Wait for the platform to notice.
	for i := 0; i < 100 && len(mgr.Anomaly().Detections()) == 0; i++ {
		mgr.RunFor(100 * simtime.Microsecond)
	}
	dets := mgr.Anomaly().Detections()
	if len(dets) == 0 {
		log.Fatal("anomaly platform did not detect the degradation")
	}
	d := dets[0]
	fmt.Printf("t=%v  DETECTED on pair %s (detection latency %v)\n",
		d.At, d.Pair, d.At.Sub(injectAt))
	fmt.Println("      localization ranking:")
	for i, s := range d.Suspects {
		marker := ""
		if s.Link == victim || s.Link == fab.Topology().Link(victim).Reverse {
			marker = "   <-- injected fault"
		}
		fmt.Printf("      %d. %-40s score=%.2f coverage=%d%s\n",
			i+1, s.Link, s.Score, s.Traversals, marker)
		if i >= 4 {
			break
		}
	}

	// The operator confirms with ihtrace: the degraded hop carries the
	// latency.
	fmt.Println("\noperator runs ihtrace gpu0 -> nic0:")
	rep, err := diag.RunTrace(fab, "gpu0", "nic0", 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	// And repairs it; heartbeats confirm recovery.
	if err := fab.RestoreLink(victim); err != nil {
		log.Fatal(err)
	}
	before := len(mgr.Anomaly().Detections())
	mgr.RunFor(3 * simtime.Millisecond)
	fmt.Printf("\nlink restored; %d new detections in the 3ms after repair\n",
		len(mgr.Anomaly().Detections())-before)
}
