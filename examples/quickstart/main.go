// Quickstart: build a managed intra-host network, admit a tenant
// through the compile -> schedule -> arbitrate pipeline, run traffic,
// and read the monitor — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	// 1. A host: the paper's Figure 1 two-socket server.
	topo := topology.TwoSocketServer()
	fmt.Printf("host %q: %d components, %d links\n\n",
		topo.Name, topo.NumComponents(), topo.NumLinks())

	// 2. A manager over it: monitor + anomaly platform + arbiter.
	mgr, err := core.New(topo, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatal(err)
	}

	// 3. Declare intent: the KV tenant wants 10 GB/s from its NIC
	// into socket-0 memory. The interpreter compiles it, the
	// scheduler picks a pathway, the arbiter enforces it.
	view, err := mgr.Admit("kv", []intent.Target{
		{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)},
	})
	if err != nil {
		log.Fatal(err)
	}
	assignment := mgr.Tenant("kv").Assignments[0]
	fmt.Printf("tenant kv admitted on pathway:\n  %s\n", assignment.Path)
	fmt.Printf("virtualized view: %d guaranteed links on host %q\n\n",
		len(view.Reservation.Links), view.HostName)

	// 4. Run traffic: the tenant's flow plus a greedy antagonist on
	// the same pathway.
	fab := mgr.Fabric()
	kvFlow := &fabric.Flow{Tenant: "kv", Path: assignment.Path}
	if err := fab.AddFlow(kvFlow); err != nil {
		log.Fatal(err)
	}
	evil := &fabric.Flow{Tenant: "evil", Path: assignment.Path}
	if err := fab.AddFlow(evil); err != nil {
		log.Fatal(err)
	}
	mgr.RunFor(simtime.Millisecond)
	fmt.Printf("after 1ms under contention:\n")
	fmt.Printf("  kv   rate: %v (guaranteed 10GB/s)\n", kvFlow.Rate())
	fmt.Printf("  evil rate: %v (leftover)\n\n", evil.Rate())

	// 5. Read the monitor: per-tenant usage by link class.
	report := mgr.Monitor().UsageReport()
	for _, tu := range report.Tenants {
		fmt.Printf("  tenant %-6s", tu.Tenant)
		for class, rate := range tu.ByClass {
			fmt.Printf("  %s=%v", class, rate)
		}
		fmt.Println()
	}
	fmt.Printf("\nvirtual time elapsed: %v; heartbeat probes sent: %d\n",
		mgr.Engine().Now(), mgr.Anomaly().ProbesSent())
}
