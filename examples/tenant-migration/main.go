// Tenant migration: the §3.2 virtualized-abstraction story. A tenant
// declares its intra-host intent once ("10 GB/s between my NIC and
// memory"). The manager compiles that intent against whatever host the
// tenant lands on, so migrating from the two-socket server to the
// DGX-style box needs no tenant-side reconfiguration — the tenant's
// virtual view simply rebinds to new physical pathways.
package main

import (
	"fmt"
	"log"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/intent"
	"repro/internal/topology"
	"repro/internal/vnet"
)

func describe(view *vnet.View, mgr *core.Manager) {
	rec := mgr.Tenant(view.Tenant)
	fmt.Printf("  host %q:\n", view.HostName)
	for _, a := range rec.Assignments {
		fmt.Printf("    pathway: %s\n", a.Path)
	}
	fmt.Printf("    guaranteed links: %d\n", len(view.Reservation.Links))
	// What the tenant itself would measure with ihperf: its virtual
	// capacity, not the physical link rate.
	p := rec.Assignments[0].Path
	perf, err := diag.RunPerf(mgr.Fabric(), p.Src(), p.Dst(), diag.PerfOptions{
		Duration: 1_000_000, Tenant: view.Tenant, Path: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    tenant-visible bandwidth (ihperf): %v (virtual view promises %v)\n",
		perf.Achieved, view.PathCapacity(p))
}

func main() {
	// The tenant's intent, written once, host-agnostic.
	targets := []intent.Target{
		{Tenant: "kv", Src: "nic0", Dst: intent.AnyMemory, Rate: topology.GBps(10)},
	}

	// Strict arbitration makes the virtual view literal: the tenant
	// measures exactly its allocation, no more (work conservation
	// would lend it the idle remainder).
	srcOpts := core.DefaultOptions()
	srcOpts.Arbiter.Mode = arbiter.Strict
	src, err := core.New(topology.TwoSocketServer(), srcOpts)
	if err != nil {
		log.Fatal(err)
	}
	if err := src.Start(); err != nil {
		log.Fatal(err)
	}
	view, err := src.Admit("kv", targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant kv admitted:")
	describe(view, src)

	// Migration target: a DGX-style host, different topology, same
	// intent.
	dstOpts := core.DefaultOptions()
	dstOpts.Seed = 2
	dstOpts.Arbiter.Mode = arbiter.Strict
	dst, err := core.New(topology.DGXStyle(), dstOpts)
	if err != nil {
		log.Fatal(err)
	}
	if err := dst.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmigrating kv to the DGX-style host ...")
	newView, err := src.Migrate("kv", dst)
	if err != nil {
		log.Fatal(err)
	}
	describe(newView, dst)

	fmt.Printf("\nsource host released its reservations: %d caps remain there\n",
		src.Fabric().CapCount())
	fmt.Println("the tenant reconfigured nothing: same intent, new pathways, same guarantee")
}
