// Colocation: the paper's §2 motivating story, end to end. A remote
// key-value store and an ML training job share one host. The KV store
// "does not use the GPU at all", yet its tail latency collapses when
// the trainer and an RDMA-loopback antagonist saturate the PCIe fabric
// and memory bus it depends on. Admitting the KV tenant through the
// manager (compile -> schedule -> arbitrate) restores its tail.
package main

import (
	"fmt"
	"log"

	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

func phase(managed bool) {
	opts := core.DefaultOptions()
	opts.EnableAnomaly = false
	opts.Arbiter.Mode = arbiter.Strict
	mgr, err := core.New(topology.TwoSocketServer(), opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatal(err)
	}
	if managed {
		if _, err := mgr.Admit("kv", []intent.Target{
			{Src: "nic0", Dst: "socket0.dimm0_0", Rate: topology.GBps(10)},
			{Src: "socket0.dimm0_0", Dst: "nic0", Rate: topology.GBps(10)},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fab := mgr.Fabric()

	kv, err := workload.StartKV(fab, workload.DefaultKVConfig("kv"))
	if err != nil {
		log.Fatal(err)
	}
	// Solo baseline.
	mgr.RunFor(simtime.Millisecond)
	solo := kv.Latency().Percentile(99)
	kv.Latency().Reset()

	// The aggressors arrive.
	ml, err := workload.StartML(fab, workload.DefaultMLConfig("ml"))
	if err != nil {
		log.Fatal(err)
	}
	lb, err := workload.StartLoopback(fab, "evil", "nic0", "socket0.dimm0_0")
	if err != nil {
		log.Fatal(err)
	}
	mgr.RunFor(2 * simtime.Millisecond)

	label := "unmanaged"
	if managed {
		label = "managed  "
	}
	fmt.Printf("%s  kv p99 solo=%-10v co-located=%-10v (%.1fx)   ml=%v  loopback=%v\n",
		label, solo, kv.Latency().Percentile(99),
		float64(kv.Latency().Percentile(99))/float64(solo),
		ml.Throughput(), lb.Rate())
	kv.Stop()
	ml.Stop()
	lb.Stop()
	mgr.Stop()
}

func main() {
	fmt.Println("KV store + ML trainer + RDMA loopback on one two-socket host")
	fmt.Println()
	phase(false)
	phase(true)
	fmt.Println()
	fmt.Println("The managed run admits kv with 10GB/s pipes both ways between nic0 and")
	fmt.Println("its memory; the arbiter caps the aggressors on every shared link, and")
	fmt.Println("the co-located tail returns to within a few x of solo.")

	// Bonus: what the monitor sees during the unmanaged incident.
	fmt.Println()
	fmt.Println("Monitor's view of the congested fabric (unmanaged, top 5 links):")
	engine := simtime.NewEngine(1)
	fab := fabric.New(topology.TwoSocketServer(), engine, fabric.DefaultConfig())
	if _, err := workload.StartML(fab, workload.DefaultMLConfig("ml")); err != nil {
		log.Fatal(err)
	}
	if _, err := workload.StartLoopback(fab, "evil", "nic0", "socket0.dimm0_0"); err != nil {
		log.Fatal(err)
	}
	engine.RunFor(simtime.Millisecond)
	for _, st := range fab.BusiestLinks(5) {
		fmt.Printf("  %-44s util=%5.1f%%  flows=%d\n", st.Link, st.Utilization*100, st.Flows)
	}
}
