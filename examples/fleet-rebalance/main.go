// Fleet rebalance: the operator-side payoff of the virtualized
// intra-host abstraction. Two managed hosts run tenants admitted by
// intent. When host A's PCIe switch silently degrades, the anomaly
// platform detects and localizes it, and the fleet migrates exactly
// the tenants whose pathways cross the suspect link — no tenant
// reconfiguration, no full drain.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/fleet"
	"repro/internal/intent"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	fl := fleet.New()
	for i, name := range []string{"host-a", "host-b"} {
		opts := core.DefaultOptions()
		opts.Seed = int64(i + 1)
		mgr, err := core.New(topology.TwoSocketServer(), opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := mgr.Start(); err != nil {
			log.Fatal(err)
		}
		if _, err := fl.AddHost(name, mgr); err != nil {
			log.Fatal(err)
		}
	}

	// Tenants place by least pressure; their intents are host-agnostic.
	place := func(tenant fabric.TenantID, targets []intent.Target) {
		_, host, err := fl.Place(tenant, targets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placed %-10s on %s\n", tenant, host.Name)
	}
	place("kv", []intent.Target{{Src: "nic0", Dst: "memory:socket0", Rate: topology.GBps(10)}})
	place("ml", []intent.Target{{Src: "gpu1", Dst: "memory:socket1", Rate: topology.GBps(10)}})
	place("scan", []intent.Target{{Src: "ssd1", Dst: "memory:socket1", Rate: topology.GBps(5)}})

	// Heartbeats calibrate on both hosts.
	fl.RunFor(3 * simtime.Millisecond)

	// Host A's switch port to nic0 silently degrades.
	hostA := fl.Host("host-a")
	fmt.Println("\ninjecting silent degradation on host-a pcieswitch0->nic0 ...")
	if err := hostA.Mgr.Fabric().DegradeLink("pcieswitch0->nic0", 0.2, 10*simtime.Microsecond); err != nil {
		log.Fatal(err)
	}
	fl.RunFor(2 * simtime.Millisecond)

	dets := hostA.Mgr.Anomaly().Detections()
	if len(dets) == 0 {
		log.Fatal("no detection")
	}
	fmt.Printf("host-a detected anomaly on pair %s; top suspect %s\n",
		dets[0].Pair, dets[0].Suspects[0].Link)
	fmt.Printf("affected tenants: %v\n", fleet.AffectedTenants(hostA))

	rep := fl.Rebalance()
	fmt.Println("\nrebalance:")
	for tenant, dst := range rep.Moved {
		fmt.Printf("  moved %-10s -> %s\n", tenant, dst)
	}
	if len(rep.Failed) > 0 {
		fmt.Printf("  unplaceable: %v\n", rep.Failed)
	}
	for _, tenant := range []fabric.TenantID{"kv", "ml", "scan"} {
		fmt.Printf("  %-10s now on %s\n", tenant, fl.Locate(tenant).Name)
	}
	fmt.Println("\nonly the tenant whose pathway crossed the degraded link moved.")
}
